"""Tests for the parametric tree families and weight models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import TaskTree
from repro.datasets.families import (
    FAMILIES,
    bouquet,
    caterpillar,
    complete_kary,
    front_weights,
    powerlaw_weights,
    preferential_attachment_tree,
    random_prufer_tree,
    spider,
    uniform_weights,
)


class TestCaterpillar:
    def test_structure(self):
        tree = caterpillar(4, leaf_weight=7, leaves_per_node=2)
        assert tree.n == 4 * 3
        assert tree.root == 0
        # Every spine node (including the tip) carries its pendant leaves,
        # so the leaves are exactly the 4*2 pendants.
        assert len(tree.leaves()) == 8

    def test_leaf_count_exact(self):
        tree = caterpillar(5, leaves_per_node=3)
        # Every spine node has 3 pendant leaves; the deepest spine node is
        # itself internal (it has leaves), so leaves == 5*3.
        assert len(tree.leaves()) == 15

    def test_depth_is_spine_length(self):
        tree = caterpillar(6, leaves_per_node=1)
        assert tree.depth() == 6  # 5 spine edges + 1 leaf edge

    def test_rejects_empty_spine(self):
        with pytest.raises(ValueError):
            caterpillar(0)

    def test_postorder_pain(self):
        """Heavy-leaf caterpillars are bad for postorders (Fig 2a's trait)."""
        from repro.analysis.bounds import memory_bounds
        from repro.experiments.registry import get_algorithm

        tree = caterpillar(10, spine_weight=1, leaf_weight=16, leaves_per_node=2)
        bounds = memory_bounds(tree)
        if not bounds.has_io_regime:
            pytest.skip("no I/O regime for this parametrisation")
        memory = bounds.mid
        postorder = get_algorithm("PostOrderMinIO")(tree, memory).io_volume
        rec = get_algorithm("RecExpand")(tree, memory).io_volume
        assert rec <= postorder


class TestSpiderAndBouquet:
    def test_spider_counts(self):
        tree = spider(5, 3)
        assert tree.n == 1 + 5 * 3
        assert len(tree.children[0]) == 5

    def test_weight_profile_applied_per_leg(self):
        tree = spider(2, 3, leg_weight=[5, 3, 9])
        for leg_top in tree.children[0]:
            chain = [leg_top]
            while tree.children[chain[-1]]:
                chain.append(tree.children[chain[-1]][0])
            assert [tree.weights[v] for v in chain] == [5, 3, 9]

    def test_profile_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spider(2, 3, leg_weight=[1, 2])

    def test_bouquet_is_figure_2b_shape(self):
        tree = bouquet(2, 4, weight=3)
        assert tree.n == 9
        assert len(tree.children[tree.root]) == 2


class TestKary:
    def test_node_count(self):
        tree = complete_kary(3, 2)
        assert tree.n == 2**4 - 1

    def test_depth_weight_function(self):
        tree = complete_kary(2, 2, weight=lambda d: 10 - d)
        assert tree.weights[tree.root] == 10
        assert all(tree.weights[v] == 8 for v in tree.leaves())

    def test_unary_chain_degenerate(self):
        tree = complete_kary(4, 1)
        assert tree.n == 5
        assert tree.depth() == 4

    def test_rejects_zero_arity(self):
        with pytest.raises(ValueError):
            complete_kary(2, 0)


class TestRandomFamilies:
    @given(n=st.integers(1, 40), seed=st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_prufer_produces_valid_trees(self, n, seed):
        tree = random_prufer_tree(n, np.random.default_rng(seed))
        assert isinstance(tree, TaskTree)
        assert tree.n == n
        assert tree.root == 0

    def test_prufer_seed_determinism(self):
        a = random_prufer_tree(25, np.random.default_rng(42))
        b = random_prufer_tree(25, np.random.default_rng(42))
        assert a == b

    def test_prufer_covers_nonbinary_shapes(self):
        """Some draw must have a node with 3+ children (binary can't)."""
        rng = np.random.default_rng(7)
        found = False
        for _ in range(20):
            tree = random_prufer_tree(12, rng)
            if any(len(c) >= 3 for c in tree.children):
                found = True
                break
        assert found

    @given(n=st.integers(1, 40), seed=st.integers(0, 2**31))
    @settings(max_examples=30)
    def test_preferential_attachment_valid(self, n, seed):
        tree = preferential_attachment_tree(n, np.random.default_rng(seed))
        assert tree.n == n

    def test_bias_increases_hubbiness(self):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        flat = preferential_attachment_tree(200, rng_a, bias=0.0)
        hubby = preferential_attachment_tree(200, rng_b, bias=2.5)
        max_deg_flat = max(len(c) for c in flat.children)
        max_deg_hub = max(len(c) for c in hubby.children)
        assert max_deg_hub > max_deg_flat

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            random_prufer_tree(5, np.random.default_rng(0), weights=[1, 2])
        with pytest.raises(ValueError):
            preferential_attachment_tree(5, np.random.default_rng(0), weights=[1])


class TestWeightModels:
    def test_uniform_range(self):
        w = uniform_weights(500, np.random.default_rng(0), low=3, high=9)
        assert min(w) >= 3 and max(w) <= 9

    def test_powerlaw_is_heavy_tailed(self):
        w = powerlaw_weights(3000, np.random.default_rng(1), alpha=1.8)
        assert max(w) > 20 * np.median(w)  # a dominant output exists
        assert min(w) >= 1

    def test_powerlaw_clamped(self):
        w = powerlaw_weights(500, np.random.default_rng(2), alpha=1.2, w_max=100)
        assert max(w) <= 100

    def test_powerlaw_alpha_validated(self):
        with pytest.raises(ValueError):
            powerlaw_weights(10, np.random.default_rng(0), alpha=1.0)

    def test_front_weights_grow_toward_root(self):
        tree = complete_kary(3, 2)
        w = front_weights(tree)
        assert w[tree.root] == max(w)
        assert all(w[v] == 1 for v in tree.leaves())

    def test_front_weights_quadratic(self):
        from repro.core.tree import chain_tree

        tree = chain_tree([1, 1, 1, 1])  # root height 3
        assert front_weights(tree) == [16, 9, 4, 1]


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_every_family_builds_and_schedules(self, name):
        from repro.analysis.bounds import memory_bounds
        from repro.core.traversal import validate
        from repro.experiments.registry import get_algorithm

        tree = FAMILIES[name](np.random.default_rng(11))
        bounds = memory_bounds(tree)
        memory = bounds.mid if bounds.has_io_regime else bounds.peak_incore
        traversal = get_algorithm("RecExpand")(tree, memory)
        validate(tree, traversal, memory)
