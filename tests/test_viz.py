"""Tests for the SVG/ASCII visualisation package."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest
from hypothesis import given, settings

from repro.analysis.profiles import build_profile
from repro.core.tree import TaskTree, balanced_binary_tree, chain_tree
from repro.viz import (
    LineChart,
    io_sweep_chart,
    memory_timeline_chart,
    profile_chart,
    tree_ascii,
    tree_chart,
)

from .conftest import task_trees


def _parse(svg: str) -> ET.Element:
    """SVG output must be well-formed XML."""
    return ET.fromstring(svg)


class TestLineChart:
    def test_renders_well_formed_svg(self):
        chart = LineChart(title="t", x_label="x", y_label="y")
        chart.add("a", [0, 1, 2], [1.0, 0.5, 0.2])
        root = _parse(chart.render())
        assert root.tag.endswith("svg")

    def test_step_series_and_dash(self):
        chart = LineChart()
        chart.add("s", [0, 1], [0.2, 0.9], step=True, dash="4,2")
        svg = chart.render()
        assert "stroke-dasharray" in svg

    def test_legend_contains_labels(self):
        chart = LineChart()
        chart.add("alpha<>&", [0, 1], [0, 1])
        svg = chart.render()
        assert "alpha&lt;&gt;&amp;" in svg  # escaped

    def test_mismatched_series_rejected(self):
        chart = LineChart()
        with pytest.raises(ValueError):
            chart.add("bad", [0, 1], [0])

    def test_empty_series_rejected(self):
        chart = LineChart()
        with pytest.raises(ValueError):
            chart.add("bad", [], [])

    def test_render_without_series_rejected(self):
        with pytest.raises(ValueError):
            LineChart().render()

    def test_write_to_file(self, tmp_path):
        chart = LineChart()
        chart.add("a", [0, 1], [0, 1])
        path = tmp_path / "chart.svg"
        chart.write(str(path))
        assert path.read_text().startswith("<svg")

    def test_degenerate_ranges_handled(self):
        chart = LineChart()
        chart.add("flat", [3, 3], [7, 7])  # zero-width extents
        _parse(chart.render())


class TestProfileChart:
    def _profile(self):
        return build_profile(
            {"A": [1.0, 1.1, 1.0], "B": [1.2, 1.0, 1.3]}
        )

    def test_profile_curves_render(self):
        svg = profile_chart(self._profile(), title="fig")
        root = _parse(svg)
        assert "A" in svg and "B" in svg
        assert root is not None

    def test_threshold_clipping(self):
        svg = profile_chart(self._profile(), max_threshold=0.05)
        _parse(svg)

    def test_percent_ticks(self):
        svg = profile_chart(self._profile())
        assert "%" in svg


class TestMemoryTimeline:
    def test_timeline_with_bound(self):
        tree = chain_tree([3, 5, 2, 6])
        svg = memory_timeline_chart(
            tree,
            {"postorder": tree.postorder()},
            memory=7,
            title="chain",
        )
        _parse(svg)
        assert "M = 7" in svg

    def test_timeline_unbounded(self):
        tree = balanced_binary_tree(2)
        svg = memory_timeline_chart(tree, {"postorder": tree.postorder()})
        _parse(svg)

    def test_io_annotated_in_labels(self):
        tree = TaskTree([-1, 0, 1, 0, 3], [1, 3, 4, 3, 4])
        svg = memory_timeline_chart(tree, {"interleaved": [2, 4, 1, 3, 0]}, memory=6)
        assert "io=" in svg


class TestIoSweep:
    def test_sweep_renders(self):
        svg = io_sweep_chart(
            chain_tree([3, 5, 2, 6]),
            {"A": [5, 3, 0], "B": [6, 4, 1]},
            memories=[6, 7, 8],
        )
        _parse(svg)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            io_sweep_chart(
                chain_tree([1, 1]), {"A": [1, 2]}, memories=[5]
            )


class TestTreeViz:
    @given(tree=task_trees(max_nodes=12))
    @settings(max_examples=20)
    def test_any_tree_renders_as_svg(self, tree):
        _parse(tree_chart(tree))

    def test_schedule_and_io_annotations(self):
        from repro.datasets.instances import figure_2b

        inst = figure_2b()
        svg = tree_chart(
            inst.tree,
            schedule=inst.witness_schedule,
            io={8: 3},
            title="figure 2b",
        )
        _parse(svg)
        assert "io=3" in svg and "#1" in svg

    def test_ascii_contains_every_node(self):
        tree = balanced_binary_tree(2)
        text = tree_ascii(tree)
        for v in range(tree.n):
            assert f"{v} (w=" in text

    def test_ascii_guards_large_trees(self):
        tree = chain_tree([1] * 300)
        with pytest.raises(ValueError):
            tree_ascii(tree)
