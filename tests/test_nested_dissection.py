"""Tests for the nested dissection ordering and its elimination trees."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets.elimination import etree_task_tree
from repro.datasets.matrices import (
    ORDERINGS,
    grid_laplacian_2d,
    grid_laplacian_3d,
    permute_symmetric,
    random_symmetric_pattern,
)
from repro.datasets.nested_dissection import (
    bfs_levels,
    nested_dissection_ordering,
    pseudo_peripheral_vertex,
)


def _adjacency(a):
    from repro.datasets.nested_dissection import _adjacency

    return _adjacency(a)


class TestBFSMachinery:
    def test_levels_on_a_path(self):
        # 0-1-2-3-4 path graph.
        a = sp.csr_matrix(sp.diags([np.ones(4), np.ones(4)], [-1, 1]))
        adj = _adjacency(a)
        alive = np.ones(5, dtype=bool)
        levels = bfs_levels(adj, 0, alive)
        assert [sorted(lv) for lv in levels] == [[0], [1], [2], [3], [4]]

    def test_levels_respect_alive_mask(self):
        a = sp.csr_matrix(sp.diags([np.ones(4), np.ones(4)], [-1, 1]))
        adj = _adjacency(a)
        alive = np.ones(5, dtype=bool)
        alive[2] = False  # cut the path
        levels = bfs_levels(adj, 0, alive)
        assert sorted(v for lv in levels for v in lv) == [0, 1]

    def test_pseudo_peripheral_on_a_path_is_an_endpoint(self):
        a = sp.csr_matrix(sp.diags([np.ones(9), np.ones(9)], [-1, 1]))
        adj = _adjacency(a)
        alive = np.ones(10, dtype=bool)
        v = pseudo_peripheral_vertex(adj, 4, alive)
        assert v in (0, 9)


class TestOrdering:
    @pytest.mark.parametrize("side", [4, 7, 10])
    def test_is_a_permutation(self, side):
        a = grid_laplacian_2d(side, side)
        order = nested_dissection_ordering(a)
        assert sorted(order.tolist()) == list(range(side * side))

    def test_empty_matrix(self):
        order = nested_dissection_ordering(sp.csr_matrix((0, 0)))
        assert order.size == 0

    def test_single_vertex(self):
        order = nested_dissection_ordering(sp.csr_matrix(np.ones((1, 1))))
        assert order.tolist() == [0]

    def test_disconnected_graph_covered(self):
        blocks = sp.block_diag(
            [grid_laplacian_2d(3, 3), grid_laplacian_2d(4, 4)], format="csr"
        )
        order = nested_dissection_ordering(blocks)
        assert sorted(order.tolist()) == list(range(25))

    def test_registered_in_orderings(self):
        assert "nd" in ORDERINGS
        a = grid_laplacian_2d(5, 5)
        order = ORDERINGS["nd"](a, np.random.default_rng(0))
        assert sorted(order.tolist()) == list(range(25))

    def test_random_pattern_is_a_permutation(self):
        rng = np.random.default_rng(3)
        a = random_symmetric_pattern(80, avg_degree=4.0, rng=rng)
        order = nested_dissection_ordering(a)
        assert sorted(order.tolist()) == list(range(80))


class TestQuality:
    """ND should beat the natural order where theory says it does."""

    def test_nd_etree_shallower_than_natural_on_grids(self):
        # The natural (banded) order yields an etree of depth ~n; nested
        # dissection yields ~O(separator-tree) depth.  This is the whole
        # point of the ordering for tree *parallelism*.
        a = grid_laplacian_2d(12, 12)
        natural = etree_task_tree(a)
        nd_perm = nested_dissection_ordering(a)
        nd_tree = etree_task_tree(permute_symmetric(a, nd_perm))
        assert nd_tree.depth() < natural.depth()

    def test_nd_reduces_total_front_weight_vs_random_on_3d(self):
        rng = np.random.default_rng(11)
        a = grid_laplacian_3d(5, 5, 5)
        random_perm = rng.permutation(125)
        w_random = etree_task_tree(permute_symmetric(a, random_perm)).total_weight()
        nd_perm = nested_dissection_ordering(a)
        w_nd = etree_task_tree(permute_symmetric(a, nd_perm)).total_weight()
        assert w_nd < w_random

    def test_leaf_size_controls_recursion(self):
        a = grid_laplacian_2d(8, 8)
        coarse = nested_dissection_ordering(a, leaf_size=64)
        fine = nested_dissection_ordering(a, leaf_size=4)
        assert sorted(coarse.tolist()) == sorted(fine.tolist())

    def test_nd_trees_feed_the_full_pipeline(self):
        from repro.analysis.bounds import memory_bounds
        from repro.experiments.registry import get_algorithm

        a = grid_laplacian_2d(9, 9)
        tree = etree_task_tree(permute_symmetric(a, nested_dissection_ordering(a)))
        bounds = memory_bounds(tree)
        memory = bounds.mid if bounds.has_io_regime else bounds.peak_incore
        traversal = get_algorithm("RecExpand")(tree, memory)
        from repro.core.traversal import validate

        validate(tree, traversal, memory)
