"""Unit tests for the FiF out-of-core simulator (Theorem 1 machinery)."""

from __future__ import annotations

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core.simulator import (
    InfeasibleSchedule,
    fif_io_volume,
    fif_traversal,
    schedule_peak_memory,
    simulate_fif,
)
from repro.core.traversal import validate
from repro.core.tree import TaskTree, chain_tree, star_tree

from .conftest import task_trees, trees_with_memory


def two_chain_tree() -> TaskTree:
    """root(1) <- {A(2) <- leafA(5), B(3) <- leafB(6)}"""
    return TaskTree([-1, 0, 1, 0, 3], [1, 2, 5, 3, 6])


class TestBasics:
    def test_no_io_when_memory_ample(self):
        tree = two_chain_tree()
        schedule = [2, 1, 4, 3, 0]
        res = simulate_fif(tree, schedule, 100)
        assert res.io_volume == 0
        assert res.io == {}

    def test_unbounded_memory_reports_peak(self):
        tree = two_chain_tree()
        # leafB (wbar 6) runs while A's output (2) is active -> 8.
        assert schedule_peak_memory(tree, [2, 1, 4, 3, 0]) == 8

    def test_eviction_happens_exactly_when_needed(self):
        tree = two_chain_tree()
        res = simulate_fif(tree, [2, 1, 4, 3, 0], 7)
        # At leafB: need 6 + 2 (A active) = 8 > 7 -> evict 1 unit of A.
        assert res.io == {1: 1}
        assert res.io_volume == 1
        assert res.peak_memory == 7

    def test_io_counted_once_not_per_read(self):
        tree = chain_tree([1, 1, 10])
        res = simulate_fif(tree, [2, 1, 0], 10)
        assert res.io_volume == 0

    def test_victim_is_furthest_in_future(self):
        # Two actives; the one whose parent runs later must be evicted.
        # root(1) <- m(2) <- {a(3), b(3)}; plus root <- c(4).
        tree = TaskTree([-1, 0, 1, 1, 0], [1, 2, 3, 3, 4])
        # order: a, b, m, c, root — after m, actives: m(2).
        # order: a, c, b, m, root — at b: actives a(3), c(4): need 3+7=10.
        res = simulate_fif(tree, [2, 4, 3, 1, 0], 8)
        # c's parent (root, pos 4) is later than a's parent (m, pos 3):
        # FiF evicts from c first.
        assert res.io.get(4, 0) == 2
        assert res.io.get(2, 0) == 0

    def test_partial_then_further_eviction_same_node(self):
        tree = star_tree(3, [4, 4, 4])
        # leaves one after another, M=8: at leaf2 need 4+4=8 ok; at leaf3
        # need 4+8=12 -> evict 4; root needs all back: wbar=12 > 8 → infeasible.
        with pytest.raises(InfeasibleSchedule):
            simulate_fif(tree, [1, 2, 3, 0], 8)

    def test_infeasible_when_wbar_exceeds_memory(self):
        tree = chain_tree([1, 5])
        with pytest.raises(InfeasibleSchedule, match="wbar=5 > M=4"):
            simulate_fif(tree, [1, 0], 4)

    def test_zero_weight_nodes(self):
        tree = TaskTree([-1, 0, 1], [2, 0, 2])
        res = simulate_fif(tree, [2, 1, 0], 2)
        assert res.io_volume == 0

    def test_io_list_alignment(self):
        tree = two_chain_tree()
        res = simulate_fif(tree, [2, 1, 4, 3, 0], 7)
        assert res.io_list(tree.n) == (0, 1, 0, 0, 0)


class TestTrace:
    def test_trace_disabled_by_default(self):
        tree = two_chain_tree()
        assert simulate_fif(tree, [2, 1, 4, 3, 0], 7).steps == ()

    def test_trace_records_steps_in_order(self):
        tree = two_chain_tree()
        res = simulate_fif(tree, [2, 1, 4, 3, 0], 7, trace=True)
        assert [s.node for s in res.steps] == [2, 1, 4, 3, 0]

    def test_trace_eviction_and_reads(self):
        tree = two_chain_tree()
        res = simulate_fif(tree, [2, 1, 4, 3, 0], 7, trace=True)
        step_leaf_b = res.steps[2]
        assert step_leaf_b.evictions == ((1, 1),)
        # Node A (=1) was partially written; the root reads it back.
        root_step = res.steps[4]
        assert root_step.reads == 1

    def test_trace_need_before(self):
        tree = two_chain_tree()
        res = simulate_fif(tree, [2, 1, 4, 3, 0], 7, trace=True)
        assert res.steps[2].need_before == 8


class TestSubtreeSchedules:
    def test_subtree_simulation_root_parent_outside(self):
        tree = two_chain_tree()
        # Simulate only the A-branch: leafA, A — A's parent (root) is not
        # part of the schedule.
        res = simulate_fif(tree, [2, 1], 5)
        assert res.io_volume == 0

    def test_subtree_peak(self):
        tree = two_chain_tree()
        assert simulate_fif(tree, [2, 1], None).peak_memory == 5


class TestFifTraversal:
    def test_produces_valid_traversal(self):
        tree = two_chain_tree()
        traversal = fif_traversal(tree, [2, 1, 4, 3, 0], 7)
        validate(tree, traversal, 7)
        assert traversal.io_volume == 1

    def test_io_volume_shortcut(self):
        tree = two_chain_tree()
        assert fif_io_volume(tree, [2, 1, 4, 3, 0], 7) == 1


class TestProperties:
    @given(trees_with_memory())
    def test_fif_result_is_always_valid(self, tree_memory):
        tree, memory = tree_memory
        schedule = list(reversed(tree.topological_order()))
        traversal = fif_traversal(tree, schedule, memory)
        validate(tree, traversal, memory)

    @given(trees_with_memory())
    def test_zero_io_iff_peak_fits(self, tree_memory):
        tree, memory = tree_memory
        schedule = list(reversed(tree.topological_order()))
        peak = schedule_peak_memory(tree, schedule)
        io = fif_io_volume(tree, schedule, memory)
        assert (io == 0) == (peak <= memory)

    @given(trees_with_memory())
    def test_io_monotone_in_memory(self, tree_memory):
        tree, memory = tree_memory
        schedule = list(reversed(tree.topological_order()))
        io_small = fif_io_volume(tree, schedule, memory)
        io_large = fif_io_volume(tree, schedule, memory + 1)
        assert io_large <= io_small

    @given(task_trees(max_nodes=8))
    def test_peak_at_least_lb(self, tree):
        schedule = list(reversed(tree.topological_order()))
        assert schedule_peak_memory(tree, schedule) >= tree.min_feasible_memory()

    @given(trees_with_memory(max_nodes=6))
    def test_fif_optimal_among_feasible_io_functions(self, tree_memory):
        """Theorem 1 on tiny instances: no valid tau beats FiF's volume.

        Exhaustively search I/O functions over a coarse grid for the fixed
        schedule and check none is both valid and cheaper.
        """
        from itertools import product

        from repro.core.traversal import InvalidTraversal, Traversal
        from repro.core.traversal import validate as check

        tree, memory = tree_memory
        if tree.n > 5:
            return  # keep the cartesian product tiny
        schedule = tuple(reversed(tree.topological_order()))
        fif = fif_io_volume(tree, schedule, memory)
        options = [range(tree.weights[v] + 1) for v in range(tree.n)]
        best = None
        for io in product(*options):
            try:
                check(tree, Traversal(schedule, io), memory)
            except InvalidTraversal:
                continue
            vol = sum(io)
            best = vol if best is None else min(best, vol)
        assert best is not None, "FiF found a solution so one must exist"
        assert fif == best
