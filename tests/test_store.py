"""Tests for the dataset store (repro.datasets.store)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.tree import chain_tree, star_tree
from repro.datasets.store import StoredTree, iter_trees, load_trees, save_trees

from .conftest import task_trees


class TestRoundTrip:
    @given(tree=task_trees(max_nodes=12))
    @settings(max_examples=25)
    def test_single_tree_round_trip(self, tree, tmp_path_factory):
        path = tmp_path_factory.mktemp("store") / "one.jsonl"
        save_trees(path, [StoredTree("t", tree, {"seed": 1})])
        (loaded,) = load_trees(path)
        assert loaded.tree == tree
        assert loaded.name == "t"
        assert loaded.meta == {"seed": 1}

    def test_collection_order_preserved(self, tmp_path):
        trees = [chain_tree([2, 3]), star_tree(1, [4, 5]), chain_tree([7])]
        path = tmp_path / "many.jsonl"
        assert save_trees(path, trees) == 3
        loaded = load_trees(path)
        assert [s.tree for s in loaded] == trees

    def test_bare_trees_get_index_names(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        save_trees(path, [chain_tree([1, 1]), chain_tree([2, 2])])
        names = [s.name for s in load_trees(path)]
        assert names == ["tree-0", "tree-1"]

    def test_streaming_matches_load(self, tmp_path):
        path = tmp_path / "s.jsonl"
        save_trees(path, [chain_tree([2, 3])] * 5)
        assert len(list(iter_trees(path))) == len(load_trees(path)) == 5


class TestRobustness:
    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        save_trees(path, [chain_tree([2, 3])])
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trees(path)) == 1

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_trees(path, [chain_tree([2, 3])])
        path.write_text(path.read_text() + "{broken\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trees(path)

    def test_invalid_tree_structure_rejected(self, tmp_path):
        path = tmp_path / "cyc.jsonl"
        path.write_text('{"name":"x","parents":[1,0],"weights":[1,1]}\n')
        with pytest.raises(ValueError, match="bad tree record"):
            load_trees(path)

    def test_end_to_end_with_dataset_builder(self, tmp_path):
        """Cache a built dataset and rerun a comparison from the cache."""
        from repro.experiments.datasets import build_synth
        from repro.experiments.figures import run_comparison

        trees = build_synth("tiny")
        path = tmp_path / "synth_tiny.jsonl"
        save_trees(
            path,
            (StoredTree(f"synth-{i}", t, {"scale": "tiny"})
             for i, t in enumerate(trees)),
        )
        reloaded = [s.tree for s in load_trees(path)]
        assert reloaded == trees
        result = run_comparison(
            "from-cache", reloaded[:6], "Mmid", ("OptMinMem", "RecExpand")
        )
        assert result.num_instances > 0
