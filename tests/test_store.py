"""Tests for the dataset store (repro.datasets.store)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.tree import chain_tree, star_tree
from repro.datasets.store import StoredTree, iter_trees, load_trees, save_trees

from .conftest import task_trees


class TestRoundTrip:
    @given(tree=task_trees(max_nodes=12))
    @settings(max_examples=25)
    def test_single_tree_round_trip(self, tree, tmp_path_factory):
        path = tmp_path_factory.mktemp("store") / "one.jsonl"
        save_trees(path, [StoredTree("t", tree, {"seed": 1})])
        (loaded,) = load_trees(path)
        assert loaded.tree == tree
        assert loaded.name == "t"
        assert loaded.meta == {"seed": 1}

    def test_collection_order_preserved(self, tmp_path):
        trees = [chain_tree([2, 3]), star_tree(1, [4, 5]), chain_tree([7])]
        path = tmp_path / "many.jsonl"
        assert save_trees(path, trees) == 3
        loaded = load_trees(path)
        assert [s.tree for s in loaded] == trees

    def test_bare_trees_get_index_names(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        save_trees(path, [chain_tree([1, 1]), chain_tree([2, 2])])
        names = [s.name for s in load_trees(path)]
        assert names == ["tree-0", "tree-1"]

    def test_streaming_matches_load(self, tmp_path):
        path = tmp_path / "s.jsonl"
        save_trees(path, [chain_tree([2, 3])] * 5)
        assert len(list(iter_trees(path))) == len(load_trees(path)) == 5


class TestRobustness:
    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        save_trees(path, [chain_tree([2, 3])])
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trees(path)) == 1

    def test_corrupt_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_trees(path, [chain_tree([2, 3])])
        path.write_text(path.read_text() + "{broken\n")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_trees(path)

    def test_invalid_tree_structure_rejected(self, tmp_path):
        path = tmp_path / "cyc.jsonl"
        path.write_text('{"name":"x","parents":[1,0],"weights":[1,1]}\n')
        with pytest.raises(ValueError, match="bad tree record"):
            load_trees(path)

    def test_end_to_end_with_dataset_builder(self, tmp_path):
        """Cache a built dataset and rerun a comparison from the cache."""
        from repro.experiments.datasets import build_synth
        from repro.experiments.figures import run_comparison

        trees = build_synth("tiny")
        path = tmp_path / "synth_tiny.jsonl"
        save_trees(
            path,
            (StoredTree(f"synth-{i}", t, {"scale": "tiny"})
             for i, t in enumerate(trees)),
        )
        reloaded = [s.tree for s in load_trees(path)]
        assert reloaded == trees
        result = run_comparison(
            "from-cache", reloaded[:6], "Mmid", ("OptMinMem", "RecExpand")
        )
        assert result.num_instances > 0


class TestResultCacheConcurrentPut:
    """Regression: ``put`` used one shared ``.tmp`` name per key, so two
    concurrent writers of the same key raced on it (one renames the temp
    file away, the other's rename explodes or publishes a torn write)."""

    def test_concurrent_writers_same_key_never_corrupt(self, tmp_path):
        import threading

        from repro.datasets.store import ResultCache

        cache = ResultCache(tmp_path / "cache")
        key = "ab" + "0" * 62
        errors: list[Exception] = []

        def writer(i: int) -> None:
            try:
                for j in range(30):
                    cache.put(key, {"writer": i, "iteration": j})
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        value = cache.get(key)
        assert value is not None and value["writer"] in range(8)
        assert not list((tmp_path / "cache").rglob("*.tmp"))

    def test_unique_temp_names_across_calls(self, tmp_path, monkeypatch):
        """The temp path must differ between calls even within one process."""
        import pathlib

        from repro.datasets.store import ResultCache

        cache = ResultCache(tmp_path / "cache")
        original = pathlib.Path.write_text
        names: list[str] = []

        def spy(self, *args, **kwargs):
            names.append(self.name)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "write_text", spy)
        key = "cd" + "1" * 62
        cache.put(key, {"v": 1})
        cache.put(key, {"v": 2})
        tmp_names = [n for n in names if n.endswith(".tmp")]
        assert len(tmp_names) == 2
        assert tmp_names[0] != tmp_names[1]


class TestBufferDigestKeys:
    """cache_key_buffers: the forest-era content addresses."""

    def test_container_independent(self):
        from array import array

        import numpy as np

        from repro.datasets.store import cache_key_buffers

        params = {"kind": "x", "version": 2, "memory": 9}
        digests = {
            cache_key_buffers(
                params, {"parents": [0, -1, 1], "weights": (5, 6, 7)}
            ),
            cache_key_buffers(
                params,
                {
                    "parents": array("q", [0, -1, 1]),
                    "weights": np.array([5, 6, 7]),
                },
            ),
            cache_key_buffers(
                params,
                {
                    "weights": np.array([5, 6, 7], dtype=np.int32),
                    "parents": (0, -1, 1),
                },
            ),
        }
        assert len(digests) == 1
        (digest,) = digests
        assert len(digest) == 64 and int(digest, 16) >= 0

    def test_values_and_params_bind_the_digest(self):
        from repro.datasets.store import cache_key_buffers

        base = cache_key_buffers({"v": 1}, {"a": [1, 2], "b": [3]})
        assert base != cache_key_buffers({"v": 2}, {"a": [1, 2], "b": [3]})
        assert base != cache_key_buffers({"v": 1}, {"a": [1, 2], "b": [4]})
        # framing: moving an element across the column boundary must not
        # collide even though the concatenated bytes are equal
        assert base != cache_key_buffers({"v": 1}, {"a": [1], "b": [2, 3]})
        # neither may renaming a column
        assert base != cache_key_buffers({"v": 1}, {"a": [1, 2], "c": [3]})

    def test_rejects_non_integral_buffers(self):
        import pytest

        from repro.datasets.store import cache_key_buffers

        with pytest.raises(TypeError, match="integral"):
            cache_key_buffers({}, {"a": [1.5]})
        with pytest.raises(TypeError, match="integral"):
            cache_key_buffers({}, {"a": ["x"]})
        with pytest.raises(TypeError, match="integral"):
            cache_key_buffers({}, {"a": [2**70, 1.5]})

    def test_beyond_int64_columns_are_addressable(self):
        """Arbitrary-precision weights (object engine) must digest too."""
        import numpy as np

        from repro.datasets.store import cache_key_buffers

        big = cache_key_buffers({}, {"a": [2**70, 1]})
        assert big == cache_key_buffers({}, {"a": (2**70, 1)})  # container-free
        assert big != cache_key_buffers({}, {"a": [2**70, 2]})
        assert big != cache_key_buffers({}, {"a": [2**69, 1]})
        # an object-boxed column of small values digests like the plain one
        boxed = np.array([5, 6, 7], dtype=object)
        assert cache_key_buffers({}, {"a": boxed}) == cache_key_buffers(
            {}, {"a": [5, 6, 7]}
        )
        # uint64 values past int64 max must not wrap onto another column
        top = np.array([2**63], dtype=np.uint64)
        assert cache_key_buffers({}, {"a": top}) == cache_key_buffers(
            {}, {"a": [2**63]}
        )
        assert cache_key_buffers({}, {"a": top}) != cache_key_buffers(
            {}, {"a": [-(2**63)]}
        )

    def test_empty_buffer_is_legal(self):
        from repro.datasets.store import cache_key_buffers

        assert cache_key_buffers({}, {"a": []}) != cache_key_buffers({}, {})

    def test_cache_key_accepts_precanonicalised_payload(self):
        from repro.datasets.store import cache_key, canonical_json

        payload = {"b": [1, 2, 3], "a": "z"}
        canonical = canonical_json(payload)
        assert cache_key(payload) == cache_key(payload, canonical=canonical)
        # key ordering must not matter
        assert canonical == canonical_json({"a": "z", "b": [1, 2, 3]})
