"""Tests for relaxed node amalgamation (repro.datasets.amalgamation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import TaskTree, chain_tree
from repro.datasets.amalgamation import amalgamate

from .conftest import task_trees


class TestBasics:
    def test_zero_threshold_is_identity(self):
        tree = chain_tree([3, 1, 2, 1])
        result = amalgamate(tree, absorb_below=0)
        assert result.tree == tree
        assert result.absorbed == 0
        assert result.node_map == tuple(range(tree.n))

    def test_small_chain_nodes_collapse(self):
        # chain root<-5<-1<-7: the weight-1 node disappears into weight-5.
        tree = chain_tree([9, 5, 1, 7])
        result = amalgamate(tree, absorb_below=2)
        assert result.absorbed == 1
        assert result.tree.n == 3
        assert sorted(result.tree.weights) == [5, 7, 9]

    def test_absorbed_child_children_reattach(self):
        tree = chain_tree([9, 5, 1, 7])
        result = amalgamate(tree, absorb_below=2)
        # The weight-7 leaf must now feed the weight-5 node directly.
        leaf = result.tree.weights.index(7)
        parent = result.tree.parents[leaf]
        assert result.tree.weights[parent] == 5

    def test_chains_of_small_nodes_collapse_together(self):
        tree = chain_tree([9, 1, 1, 1, 7])
        result = amalgamate(tree, absorb_below=2)
        assert result.absorbed == 3
        assert result.tree.n == 2

    def test_root_never_absorbed(self):
        tree = chain_tree([1, 1, 1])
        result = amalgamate(tree, absorb_below=10)
        assert result.tree.n == 1
        root_group = result.group(0)
        assert 0 in root_group and len(root_group) == 3

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            amalgamate(chain_tree([1]), absorb_below=-1)


class TestProperties:
    @given(tm=task_trees(max_nodes=12, max_weight=9), threshold=st.integers(0, 10))
    @settings(max_examples=40)
    def test_result_is_a_valid_tree(self, tm, threshold):
        result = amalgamate(tm, absorb_below=threshold)
        assert isinstance(result.tree, TaskTree)
        assert result.tree.n + result.absorbed == tm.n

    @given(tm=task_trees(max_nodes=12, max_weight=9), threshold=st.integers(0, 10))
    @settings(max_examples=40)
    def test_node_map_targets_survivors(self, tm, threshold):
        result = amalgamate(tm, absorb_below=threshold)
        assert all(0 <= m < result.tree.n for m in result.node_map)

    @given(tm=task_trees(max_nodes=12, max_weight=9), threshold=st.integers(1, 10))
    @settings(max_examples=40)
    def test_surviving_weights_preserved(self, tm, threshold):
        """Merging never changes a surviving node's output size."""
        result = amalgamate(tm, absorb_below=threshold)
        surviving_old = {m for m in result.node_map}
        for new in surviving_old:
            group = result.group(new)
            # Exactly one member keeps its identity (the absorber).
            assert result.tree.weights[new] in [tm.weights[v] for v in group]

    @given(tm=task_trees(max_nodes=12, max_weight=9))
    @settings(max_examples=30)
    def test_total_weight_never_increases(self, tm):
        result = amalgamate(tm, absorb_below=5)
        assert result.tree.total_weight() <= tm.total_weight()

    @given(tm=task_trees(max_nodes=12, max_weight=9))
    @settings(max_examples=30)
    def test_fan_in_cap_respected(self, tm):
        capped = amalgamate(tm, absorb_below=5, max_fan_in=12)
        for v in range(capped.tree.n):
            fan_in = sum(capped.tree.weights[c] for c in capped.tree.children[v])
            # Nodes whose fan-in already exceeded the cap before any
            # absorption are allowed; absorptions must not create new ones
            # beyond the original maximum.
            assert fan_in <= max(12, max(
                sum(tm.weights[c] for c in tm.children[u]) for u in range(tm.n)
            ))


class TestTradeOff:
    def test_amalgamation_raises_lb_but_shrinks_tree(self):
        """The documented memory-for-granularity trade on a real etree."""
        from repro.datasets.elimination import etree_task_tree
        from repro.datasets.matrices import grid_laplacian_2d

        tree = etree_task_tree(grid_laplacian_2d(12, 12))
        coarse = amalgamate(tree, absorb_below=8).tree
        assert coarse.n < tree.n
        assert coarse.min_feasible_memory() >= tree.min_feasible_memory()

    def test_scheduling_still_works_after_amalgamation(self):
        from repro.analysis.bounds import memory_bounds
        from repro.core.traversal import validate
        from repro.datasets.elimination import etree_task_tree
        from repro.datasets.matrices import grid_laplacian_2d
        from repro.experiments.registry import get_algorithm

        tree = amalgamate(
            etree_task_tree(grid_laplacian_2d(10, 10)), absorb_below=6
        ).tree
        bounds = memory_bounds(tree)
        memory = bounds.mid if bounds.has_io_regime else bounds.peak_incore
        traversal = get_algorithm("RecExpand")(tree, memory)
        validate(tree, traversal, memory)
