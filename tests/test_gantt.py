"""Tests for the Gantt chart renderer (repro.viz.gantt)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.algorithms.liu import LiuSolver
from repro.analysis.bounds import memory_bounds
from repro.datasets.synth import synth_instance
from repro.parallel import priority_from_schedule, simulate_parallel
from repro.viz import gantt_chart


def _report(processors=3, bandwidth=0.0):
    for seed in range(1, 60):
        tree = synth_instance(30, seed=seed)
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            break
    order = LiuSolver(tree).schedule()
    return simulate_parallel(
        tree,
        bounds.mid,
        processors,
        priority_from_schedule(order),
        bandwidth=bandwidth,
    )


class TestGantt:
    def test_well_formed_svg(self):
        svg = gantt_chart(_report(), title="run")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_lane_label_per_processor(self):
        report = _report(processors=4)
        svg = gantt_chart(report)
        for p in range(4):
            assert f">P{p}<" in svg

    def test_one_bar_per_task(self):
        report = _report()
        svg = gantt_chart(report)
        bars = svg.count('fill-opacity="0.75"')
        assert bars == len(report.events)

    def test_footer_reports_metrics(self):
        report = _report()
        svg = gantt_chart(report)
        assert f"io {report.io_volume}" in svg
        assert "utilisation" in svg

    def test_read_stalls_shaded_when_bandwidth_positive(self):
        report = _report(processors=2, bandwidth=5.0)
        if all(e.read_volume == 0 for e in report.events):
            pytest.skip("no reads in this run")
        svg = gantt_chart(report)
        assert 'fill-opacity="0.25"' in svg

    def test_empty_report_rejected(self):
        from repro.parallel.engine import ParallelReport

        empty = ParallelReport(
            makespan=0.0, io_volume=0, peak_memory=0, events=(), busy_time=(0.0,)
        )
        with pytest.raises(ValueError):
            gantt_chart(empty)

    def test_title_escaped(self):
        svg = gantt_chart(_report(), title="a<b&c")
        assert "a&lt;b&amp;c" in svg
