"""Edge cases across the whole stack: degenerate trees, boundary memory
values, extreme weights — the inputs that break off-by-one reasoning."""

from __future__ import annotations

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.algorithms.liu import LiuSolver, opt_min_mem
from repro.algorithms.postorder import postorder_min_io, postorder_min_mem
from repro.algorithms.rec_expand import full_rec_expand, rec_expand
from repro.analysis.bounds import memory_bounds
from repro.core.simulator import fif_io_volume, fif_traversal, simulate_fif
from repro.core.traversal import validate
from repro.core.tree import TaskTree, chain_tree, star_tree
from repro.experiments.registry import ALGORITHMS


class TestSingleNode:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_strategy_handles_single_node(self, name):
        tree = TaskTree([-1], [5])
        traversal = ALGORITHMS[name](tree, 5)
        validate(tree, traversal, 5)
        assert traversal.io_volume == 0

    def test_zero_weight_single_node(self):
        tree = TaskTree([-1], [0])
        schedule, peak = opt_min_mem(tree)
        assert peak == 0
        # Even M = 0 works: there is nothing to store.
        assert fif_io_volume(tree, schedule, 0) == 0


class TestZeroWeights:
    def test_zero_weight_chain(self):
        tree = chain_tree([0, 0, 0, 0])
        schedule, peak = opt_min_mem(tree)
        assert peak == 0
        validate(tree, fif_traversal(tree, schedule, 0), 0)

    def test_zero_weight_interior_node(self):
        # A free "synchronisation" task between two heavy ones.
        tree = TaskTree([-1, 0, 1], [4, 0, 4])
        schedule, peak = opt_min_mem(tree)
        assert peak == 4
        res = postorder_min_io(tree, 4)
        assert res.predicted_io == 0

    def test_zero_weight_leaves_under_star(self):
        tree = star_tree(3, [0, 0, 0])
        _, peak = opt_min_mem(tree)
        assert peak == 3  # the root's own output

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_strategies_with_mixed_zero_weights(self, name):
        tree = TaskTree([-1, 0, 0, 1, 1, 2], [2, 0, 3, 4, 0, 5])
        memory = memory_bounds(tree).peak_incore
        traversal = ALGORITHMS[name](tree, memory)
        validate(tree, traversal, memory)


class TestBoundaryMemory:
    def test_memory_exactly_lb(self):
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
        lb = tree.min_feasible_memory()
        for name, strategy in ALGORITHMS.items():
            traversal = strategy(tree, lb)
            validate(tree, traversal, lb)

    def test_memory_exactly_peak_no_io(self):
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
        peak = memory_bounds(tree).peak_incore
        for name, strategy in ALGORITHMS.items():
            assert strategy(tree, peak).io_volume == 0, name

    def test_one_below_peak_forces_io_for_optminmem(self):
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            schedule, _ = opt_min_mem(tree)
            assert fif_io_volume(tree, schedule, bounds.m2) > 0


class TestExtremeWeights:
    def test_huge_weights_no_overflow(self):
        big = 10**15
        tree = TaskTree([-1, 0, 0], [big, big, big])
        _, peak = opt_min_mem(tree)
        assert peak == 2 * big
        res = simulate_fif(tree, [1, 2, 0], 2 * big)
        assert res.io_volume == 0

    def test_single_heavy_among_light(self):
        tree = star_tree(1, [10**9, 1, 1, 1])
        bounds = memory_bounds(tree)
        assert bounds.lb == 10**9 + 3

    @given(st.integers(1, 10**12))
    def test_two_node_tree_any_weight(self, w):
        tree = chain_tree([1, w])
        schedule, peak = opt_min_mem(tree)
        assert peak == w
        assert fif_io_volume(tree, schedule, w) == 0


class TestDegenerateShapes:
    def test_wide_star_tight_memory(self):
        tree = star_tree(1, [1] * 50)
        lb = tree.min_feasible_memory()  # 50: all leaves at the root step
        for name in ("OptMinMem", "PostOrderMinIO", "RecExpand"):
            traversal = ALGORITHMS[name](tree, lb)
            validate(tree, traversal, lb)
            assert traversal.io_volume == 0  # nothing helps or hurts

    def test_bamboo_with_alternating_weights(self):
        weights = [1 if i % 2 else 7 for i in range(60)]
        tree = chain_tree(weights)
        bounds = memory_bounds(tree)
        # A chain never needs I/O above LB.
        assert bounds.lb == bounds.peak_incore

    def test_broom(self):
        # A chain ending in a star: classic multifrontal silhouette.
        parents = [-1] + list(range(9)) + [9] * 5
        weights = [2] * 10 + [3] * 5
        tree = TaskTree(parents, weights)
        bounds = memory_bounds(tree)
        for name, strategy in ALGORITHMS.items():
            traversal = strategy(tree, bounds.peak_incore)
            validate(tree, traversal, bounds.peak_incore)

    def test_two_level_fanout_of_fanouts(self):
        parents = [-1, 0, 0, 0] + [1] * 3 + [2] * 3 + [3] * 3
        tree = TaskTree(parents, [1] * len(parents))
        bounds = memory_bounds(tree)
        po = postorder_min_io(tree, bounds.lb)
        assert po.predicted_io >= 0
        validate(tree, fif_traversal(tree, po.schedule, bounds.lb), bounds.lb)


class TestLiuSegmentsEdge:
    def test_equal_weights_everywhere(self):
        tree = star_tree(5, [5, 5, 5])
        solver = LiuSolver(tree)
        segs = solver.segments()
        assert segs[-1].valley == 5

    def test_segments_of_zero_weight_subtree(self):
        tree = chain_tree([0, 0])
        segs = LiuSolver(tree).segments()
        assert len(segs) == 1
        assert segs[0].hill == 0

    def test_postorder_minmem_equals_liu_on_chains(self):
        tree = chain_tree([3, 1, 4, 1, 5])
        assert postorder_min_mem(tree).peak_memory == opt_min_mem(tree)[1]


class TestRecExpandEdge:
    def test_rec_expand_at_peak_returns_input_shape(self):
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
        peak = memory_bounds(tree).peak_incore
        result = rec_expand(tree, peak)
        assert result.expanded_tree_size == tree.n
        assert result.io_volume == 0

    def test_full_rec_expand_zero_weight_victims(self):
        # Zero-weight nodes can never be victims (tau <= w = 0).
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 0, 2, 6, 6])
        bounds = memory_bounds(tree)
        if bounds.has_io_regime:
            result = full_rec_expand(tree, bounds.mid)
            validate(tree, result.traversal, bounds.mid)
