"""One end-to-end integration chain across every subsystem.

Follows a single problem through the whole library, asserting the
cross-subsystem contracts at each hop:

    sparse matrix → nested dissection → elimination tree → amalgamation
    → memory bounds → scheduling (all strategies) → validity → trace
    export/replay → paged replay → device timing → dataset store →
    parallel execution → visualisation.

Any interface drift between subsystems breaks here first.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.bounds import memory_bounds
from repro.core.simulator import simulate_fif
from repro.core.trace import from_jsonl, replay, to_jsonl, traversal_trace
from repro.core.traversal import validate
from repro.datasets.amalgamation import amalgamate
from repro.datasets.elimination import etree_task_tree
from repro.datasets.matrices import grid_laplacian_2d, permute_symmetric
from repro.datasets.nested_dissection import nested_dissection_ordering
from repro.datasets.store import StoredTree, load_trees, save_trees
from repro.experiments.registry import ALGORITHMS, get_algorithm
from repro.io import HDD, estimate_time, paged_io
from repro.parallel import priority_from_schedule, simulate_parallel
from repro.viz import gantt_chart, memory_timeline_chart, tree_chart


@pytest.fixture(scope="module")
def problem():
    """Matrix → ND → etree → amalgamation → a tree with an I/O regime."""
    matrix = grid_laplacian_2d(13, 13)
    perm = nested_dissection_ordering(matrix)
    tree = etree_task_tree(permute_symmetric(matrix, perm))
    coarse = amalgamate(tree, absorb_below=8).tree
    bounds = memory_bounds(coarse)
    assert bounds.has_io_regime, "pipeline fixture must exercise I/O"
    return coarse, bounds.mid


class TestSchedulingLayer:
    def test_every_strategy_yields_a_valid_traversal(self, problem):
        tree, memory = problem
        for name, strategy in ALGORITHMS.items():
            traversal = strategy(tree, memory)
            validate(tree, traversal, memory)

    def test_recexpand_never_worse_than_optminmem_here(self, problem):
        tree, memory = problem
        rec = get_algorithm("RecExpand")(tree, memory)
        opt = get_algorithm("OptMinMem")(tree, memory)
        assert rec.io_volume <= opt.io_volume


class TestTraceLayer:
    def test_export_replay_round_trip(self, problem):
        tree, memory = problem
        traversal = get_algorithm("RecExpand")(tree, memory)
        events = from_jsonl(to_jsonl(traversal_trace(tree, traversal)))
        result = replay(tree, events, memory)
        assert result.io_volume == traversal.io_volume
        assert result.peak_memory <= memory


class TestPagingLayer:
    def test_belady_page_replay_matches_planner(self, problem):
        tree, memory = problem
        traversal = get_algorithm("RecExpand")(tree, memory)
        paged = paged_io(tree, traversal.schedule, memory, trace=True)
        node = simulate_fif(tree, traversal.schedule, memory)
        assert paged.write_units == node.io_volume
        stats = estimate_time(paged.events, HDD)
        assert stats.pages == paged.write_pages + paged.read_pages

    def test_online_policy_overhead_is_bounded_sane(self, problem):
        tree, memory = problem
        traversal = get_algorithm("RecExpand")(tree, memory)
        belady = paged_io(tree, traversal.schedule, memory, policy="belady")
        lru = paged_io(tree, traversal.schedule, memory, policy="lru")
        assert belady.write_pages <= lru.write_pages


class TestStoreLayer:
    def test_problem_survives_the_dataset_store(self, problem, tmp_path):
        tree, memory = problem
        path = tmp_path / "pipeline.jsonl"
        save_trees(path, [StoredTree("pipeline", tree, {"memory": memory})])
        (loaded,) = load_trees(path)
        assert loaded.tree == tree
        assert loaded.meta["memory"] == memory


class TestParallelLayer:
    def test_parallel_execution_and_gantt(self, problem):
        tree, memory = problem
        order = get_algorithm("RecExpand")(tree, memory).schedule
        report = simulate_parallel(
            tree, memory, 4, priority_from_schedule(order)
        )
        assert sorted(report.order) == list(range(tree.n))
        svg = gantt_chart(report, title="pipeline")
        ET.fromstring(svg)


class TestVisualisationLayer:
    def test_timeline_and_tree_render(self, problem):
        tree, memory = problem
        traversal = get_algorithm("RecExpand")(tree, memory)
        ET.fromstring(
            memory_timeline_chart(
                tree, {"RecExpand": traversal.schedule}, memory
            )
        )
        small = amalgamate(tree, absorb_below=10_000).tree  # tiny for drawing
        ET.fromstring(tree_chart(small))
