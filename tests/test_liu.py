"""Tests for Liu's optimal MinMem solver (OPTMINMEM)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.brute_force import min_peak_brute
from repro.algorithms.liu import LiuSolver, min_peak_memory, opt_min_mem
from repro.core.expansion import ExpansionTree
from repro.core.simulator import schedule_peak_memory
from repro.core.tree import TaskTree, balanced_binary_tree, chain_tree, star_tree
from repro.datasets.instances import figure_2b, figure_2c, figure_6, figure_7

from .conftest import task_trees


class TestSmallExactValues:
    def test_single_node(self):
        schedule, peak = opt_min_mem(TaskTree([-1], [7]))
        assert schedule == [0] and peak == 7

    def test_chain_peak_is_max_adjacent_constraint(self):
        # Chain 2 <- 9 <- 3 (root weight 2): peak = max over nodes of wbar.
        tree = chain_tree([2, 9, 3])
        _, peak = opt_min_mem(tree)
        assert peak == 9

    def test_star_peak(self):
        tree = star_tree(1, [5, 3, 2])
        _, peak = opt_min_mem(tree)
        assert peak == 10  # all leaves must coexist at the root step

    def test_two_independent_chains_interleaving_helps(self):
        # Figure 2(b): the optimal peak is 8, below the chain-by-chain 9.
        inst = figure_2b()
        schedule, peak = opt_min_mem(inst.tree)
        assert peak == 8
        assert schedule_peak_memory(inst.tree, schedule) == 8

    def test_figure_2c_peak(self):
        for k in (1, 2, 3, 5):
            inst = figure_2c(k)
            _, peak = opt_min_mem(inst.tree)
            assert peak == 5 * k

    def test_figure_6_peak(self):
        _, peak = opt_min_mem(figure_6().tree)
        assert peak == 12

    def test_figure_7_peak(self):
        _, peak = opt_min_mem(figure_7().tree)
        assert peak == 9

    def test_balanced_homogeneous(self):
        # Unit-weight complete binary tree of depth d: peak = d + 1 (the
        # second child of each level is processed with one sibling pending;
        # this is Sethi–Ullman register counting).
        for depth in (1, 2, 3, 4):
            _, peak = opt_min_mem(balanced_binary_tree(depth))
            assert peak == depth + 1


class TestSegments:
    def test_leaf_segment(self):
        solver = LiuSolver(TaskTree([-1], [4]))
        segs = solver.segments()
        assert len(segs) == 1
        assert (segs[0].hill, segs[0].valley) == (4, 4)

    def test_canonical_invariants_random(self):
        import numpy as np

        from repro.datasets.synth import random_plane_tree, random_weights

        rng = np.random.default_rng(3)
        for _ in range(50):
            n = int(rng.integers(1, 40))
            tree = random_plane_tree(n, rng).with_weights(random_weights(n, rng))
            solver = LiuSolver(tree)
            for v in range(tree.n):
                segs = solver.segments(v)
                hills = [s.hill for s in segs]
                valleys = [s.valley for s in segs]
                assert hills == sorted(hills, reverse=True)
                assert valleys == sorted(valleys)
                assert len(set(hills)) == len(hills)
                assert len(set(valleys)) == len(valleys)
                assert all(h >= v for h, v in zip(hills, valleys))
                assert valleys[-1] == tree.weights[v]

    def test_segment_nodes_partition_subtree(self):
        tree = figure_2b().tree
        solver = LiuSolver(tree)
        nodes = [v for seg in solver.segments() for v in seg.node_list()]
        assert sorted(nodes) == list(range(tree.n))

    def test_schedule_matches_segments(self):
        tree = figure_2b().tree
        solver = LiuSolver(tree)
        flat = [v for seg in solver.segments() for v in seg.node_list()]
        assert solver.schedule() == flat


class TestScheduleProperties:
    @given(task_trees(max_nodes=9))
    def test_schedule_is_topological_and_realises_peak(self, tree):
        schedule, peak = opt_min_mem(tree)
        pos = {v: i for i, v in enumerate(schedule)}
        assert sorted(schedule) == list(range(tree.n))
        for v in range(tree.n):
            if tree.parents[v] != -1:
                assert pos[v] < pos[tree.parents[v]]
        assert schedule_peak_memory(tree, schedule) == peak

    @given(task_trees(max_nodes=7))
    @settings(max_examples=60)
    def test_optimal_vs_brute_force(self, tree):
        _, peak = opt_min_mem(tree)
        brute, _ = min_peak_brute(tree)
        assert peak == brute

    @given(task_trees(max_nodes=9))
    def test_peak_at_least_lb(self, tree):
        assert min_peak_memory(tree) >= tree.min_feasible_memory()

    def test_deep_chain_no_recursion(self):
        n = 30_000
        tree = TaskTree([i - 1 for i in range(n)], [1] * n)
        schedule, peak = opt_min_mem(tree)
        assert peak == 1
        assert len(schedule) == n


class TestIncrementalSolve:
    def test_invalidate_then_recompute_matches_fresh(self):
        tree = figure_6().tree
        xt = ExpansionTree(tree)
        solver = LiuSolver(xt)
        before = solver.peak()
        dirty = xt.expand(5, 2)  # node b of the figure
        solver.invalidate_from(dirty)
        incremental = solver.peak()
        fresh = LiuSolver(xt).peak()
        assert incremental == fresh
        assert incremental <= before

    def test_invalidate_keeps_sibling_caches(self):
        tree = figure_6().tree
        xt = ExpansionTree(tree)
        solver = LiuSolver(xt)
        solver.peak()
        cached_before = dict(solver._segs)
        dirty = xt.expand(5, 2)
        solver.invalidate_from(dirty)
        # The untouched left branch (nodes 0..3) must still be cached.
        for v in (0, 1, 2, 3):
            assert solver._segs[v] is cached_before[v]
        # The ancestors of the expansion must be gone.
        assert 7 not in solver._segs

    def test_weight_reduction_invalidation(self):
        tree = chain_tree([2, 6, 4])
        xt = ExpansionTree(tree)
        solver = LiuSolver(xt)
        assert solver.peak() == 6
        residual = xt.expand(1, 3)  # splice above node 1
        solver.invalidate_from(residual)
        p1 = solver.peak()
        assert p1 == LiuSolver(xt).peak()
        # reduce the residual node further
        mid = xt.n - 2
        dirty = xt.expand(mid, 1)
        assert dirty == mid
        solver.invalidate_from(dirty)
        assert solver.peak() == LiuSolver(xt).peak()


class TestTieBreakDeterminism:
    def test_same_tree_same_schedule(self):
        tree = figure_2c(3).tree
        assert opt_min_mem(tree) == opt_min_mem(tree)

    def test_figure_2c_schedule_interleaves_chains(self):
        # The essence of Section 4.4: the optimal-peak schedule alternates
        # between the two chains (this is what makes its I/O terrible).
        inst = figure_2c(4)
        schedule, _ = opt_min_mem(inst.tree)
        m = 2 * 4 + 2
        chain_of = lambda v: 0 if v < m else (1 if v < 2 * m else 2)
        switches = sum(
            1
            for a, b in zip(schedule, schedule[1:])
            if chain_of(a) != chain_of(b) and chain_of(b) != 2
        )
        assert switches >= 4  # a chain-by-chain schedule would have 1
