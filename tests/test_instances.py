"""Exactness tests for the paper's hand-crafted instances.

Every claim the paper makes about Figures 2, 6 and 7 is pinned here with
exact numbers (up to documented tie-breaking freedom in OPTMINMEM).
"""

from __future__ import annotations

import pytest

from repro.algorithms.brute_force import min_io_brute
from repro.algorithms.liu import opt_min_mem
from repro.algorithms.postorder import postorder_min_io
from repro.algorithms.rec_expand import full_rec_expand
from repro.core.simulator import fif_io_volume, schedule_peak_memory
from repro.core.traversal import validate
from repro.datasets.instances import (
    figure_2a,
    figure_2b,
    figure_2c,
    figure_6,
    figure_7,
)


class TestFigure2a:
    def test_base_structure(self):
        inst = figure_2a(16)
        assert inst.tree.n == 15
        assert inst.memory == 16

    def test_witness_does_one_io(self):
        inst = figure_2a(16)
        assert fif_io_volume(inst.tree, inst.witness_schedule, inst.memory) == 1

    def test_witness_valid(self):
        inst = figure_2a(16)
        from repro.core.simulator import fif_traversal

        validate(
            inst.tree,
            fif_traversal(inst.tree, inst.witness_schedule, inst.memory),
            inst.memory,
        )

    @pytest.mark.parametrize("ext", [1, 2, 3])
    def test_extensions_keep_one_io(self, ext):
        inst = figure_2a(16, extensions=ext)
        assert inst.tree.n == 15 + 4 * ext
        assert fif_io_volume(inst.tree, inst.witness_schedule, inst.memory) == 1

    @pytest.mark.parametrize("memory", [8, 16, 32])
    def test_postorder_pays_per_leaf(self, memory):
        """Ω(n·M): every postorder pays ≥ M/2 - 1 per leaf beyond the first."""
        inst = figure_2a(memory, extensions=2)
        leaves = len(inst.tree.leaves())
        res = postorder_min_io(inst.tree, inst.memory)
        assert res.predicted_io >= (leaves - 1) * (memory // 2 - 1)

    def test_gap_grows_with_extensions(self):
        m = 16
        gap = []
        for ext in (0, 2, 4):
            inst = figure_2a(m, extensions=ext)
            po = postorder_min_io(inst.tree, inst.memory).predicted_io
            gap.append(po)
        assert gap[0] < gap[1] < gap[2]

    def test_rejects_odd_or_small_memory(self):
        with pytest.raises(ValueError):
            figure_2a(7)
        with pytest.raises(ValueError):
            figure_2a(6)


class TestFigure2b:
    def test_structure(self):
        inst = figure_2b()
        assert inst.tree.n == 9
        assert inst.memory == 6

    def test_minimum_peak_is_8(self):
        _, peak = opt_min_mem(figure_2b().tree)
        assert peak == 8

    def test_witness_chain_by_chain(self):
        inst = figure_2b()
        assert schedule_peak_memory(inst.tree, inst.witness_schedule) == 9
        assert fif_io_volume(inst.tree, inst.witness_schedule, inst.memory) == 3

    def test_optimum_is_3(self):
        inst = figure_2b()
        opt, _ = min_io_brute(inst.tree, inst.memory)
        assert opt == 3

    def test_optminmem_pays_more(self):
        """Any minimum-peak schedule pays > 3 (the paper's exhibit pays 4;
        tie-breaking may pick another optimal-peak schedule, still > 3)."""
        inst = figure_2b()
        schedule, peak = opt_min_mem(inst.tree)
        assert peak == 8
        assert fif_io_volume(inst.tree, schedule, inst.memory) >= 4


class TestFigure2c:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 6])
    def test_structure(self, k):
        inst = figure_2c(k)
        assert inst.tree.n == 2 * (2 * k + 2) + 1
        assert inst.memory == 4 * k

    @pytest.mark.parametrize("k", [2, 3, 4, 6])
    def test_peak_is_5k(self, k):
        _, peak = opt_min_mem(figure_2c(k).tree)
        assert peak == 5 * k

    @pytest.mark.parametrize("k", [2, 3, 4, 6])
    def test_witness_pays_2k(self, k):
        inst = figure_2c(k)
        assert fif_io_volume(inst.tree, inst.witness_schedule, inst.memory) == 2 * k

    @pytest.mark.parametrize("k", [2, 3, 4, 6, 8])
    def test_optminmem_pays_quadratic(self, k):
        """The competitive ratio grows at least linearly in k."""
        inst = figure_2c(k)
        schedule, _ = opt_min_mem(inst.tree)
        io = fif_io_volume(inst.tree, schedule, inst.memory)
        assert io >= k * k
        assert io / (2 * k) >= k / 2  # ratio vs the witness

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            figure_2c(0)


class TestFigure6:
    def test_structure(self):
        inst = figure_6()
        assert inst.tree.n == 8
        assert inst.memory == 10

    def test_true_optimum_is_3(self):
        inst = figure_6()
        opt, _ = min_io_brute(inst.tree, inst.memory)
        assert opt == 3
        assert fif_io_volume(inst.tree, inst.witness_schedule, inst.memory) == 3

    def test_optminmem_pays_4(self):
        inst = figure_6()
        schedule, peak = opt_min_mem(inst.tree)
        assert peak == 12
        assert fif_io_volume(inst.tree, schedule, inst.memory) == 4

    def test_postorder_pays_4(self):
        inst = figure_6()
        assert postorder_min_io(inst.tree, inst.memory).predicted_io == 4

    def test_full_rec_expand_is_optimal_here(self):
        inst = figure_6()
        assert full_rec_expand(inst.tree, inst.memory).io_volume == 3


class TestFigure7:
    def test_structure(self):
        inst = figure_7()
        assert inst.tree.n == 7
        assert inst.memory == 7

    def test_postorder_is_optimal_here(self):
        inst = figure_7()
        opt, _ = min_io_brute(inst.tree, inst.memory)
        assert opt == 3
        assert postorder_min_io(inst.tree, inst.memory).predicted_io == 3

    def test_optminmem_and_full_rec_expand_pay_4(self):
        inst = figure_7()
        schedule, peak = opt_min_mem(inst.tree)
        assert peak == 9
        assert fif_io_volume(inst.tree, schedule, inst.memory) == 4
        assert full_rec_expand(inst.tree, inst.memory).io_volume == 4

    def test_witness(self):
        inst = figure_7()
        assert fif_io_volume(inst.tree, inst.witness_schedule, inst.memory) == 3
