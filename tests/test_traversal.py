"""Unit tests for traversals and the independent validity checker."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.traversal import InvalidTraversal, Traversal, is_postorder, validate
from repro.core.tree import TaskTree, chain_tree, star_tree

from .conftest import task_trees


def t3() -> TaskTree:
    """root(2) <- {1(3), 2(4)}"""
    return TaskTree([-1, 0, 0], [2, 3, 4])


class TestTraversalObject:
    def test_io_volume(self):
        tr = Traversal((1, 2, 0), (0, 2, 3))
        assert tr.io_volume == 5

    def test_performance_metric(self):
        tr = Traversal((0,), (0,))
        assert tr.performance(10) == 1.0
        tr = Traversal((0,), (10,))
        assert tr.performance(10) == 2.0

    def test_position(self):
        tr = Traversal((2, 0, 1), (0, 0, 0))
        assert tr.position() == {2: 0, 0: 1, 1: 2}

    def test_from_schedule(self):
        tr = Traversal.from_schedule([1, 0], [0, 0])
        assert tr.schedule == (1, 0)

    def test_frozen(self):
        tr = Traversal((0,), (0,))
        with pytest.raises(AttributeError):
            tr.schedule = (1,)  # type: ignore[misc]


class TestValidate:
    def test_valid_traversal_passes(self):
        tree = t3()
        validate(tree, Traversal((1, 2, 0), (0, 0, 0)), memory=7)

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidTraversal, match="permutation"):
            validate(t3(), Traversal((1, 1, 0), (0, 0, 0)), 100)

    def test_rejects_wrong_length(self):
        with pytest.raises(InvalidTraversal, match="permutation"):
            validate(t3(), Traversal((1, 0), (0, 0, 0)), 100)

    def test_rejects_parent_before_child(self):
        with pytest.raises(InvalidTraversal, match="before its parent"):
            validate(t3(), Traversal((0, 1, 2), (0, 0, 0)), 100)

    def test_rejects_io_out_of_range(self):
        with pytest.raises(InvalidTraversal, match="out of range"):
            validate(t3(), Traversal((1, 2, 0), (0, 4, 0)), 100)

    def test_rejects_negative_io(self):
        with pytest.raises(InvalidTraversal, match="out of range"):
            validate(t3(), Traversal((1, 2, 0), (0, -1, 0)), 100)

    def test_rejects_misaligned_io(self):
        with pytest.raises(InvalidTraversal, match="aligned"):
            validate(t3(), Traversal((1, 2, 0), (0, 0)), 100)

    def test_memory_violation_detected(self):
        # Executing 2 (wbar=4) while 1's output (3) is active needs 7.
        with pytest.raises(InvalidTraversal, match="needs 7 > M=6"):
            validate(t3(), Traversal((1, 2, 0), (0, 0, 0)), 6)

    def test_io_relieves_memory_pressure(self):
        # root(1) <- {a(2) <- leafA(6), b(2) <- leafB(6)}; at leafB the
        # active output of a must be (partly) on disk to fit M=6.
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
        schedule = (3, 1, 4, 2, 0)
        with pytest.raises(InvalidTraversal):
            validate(tree, Traversal(schedule, (0, 0, 0, 0, 0)), 6)
        validate(tree, Traversal(schedule, (0, 2, 0, 0, 0)), 6)

    def test_children_not_counted_as_active_at_parent_step(self):
        # At the root step, inputs are inside wbar, not double counted.
        tree = t3()
        validate(tree, Traversal((1, 2, 0), (0, 0, 0)), memory=7)
        with pytest.raises(InvalidTraversal):
            validate(tree, Traversal((1, 2, 0), (0, 0, 0)), memory=6)

    def test_root_io_never_needed_but_allowed(self):
        validate(t3(), Traversal((1, 2, 0), (0, 0, 2)), 7)

    def test_single_node(self):
        validate(TaskTree([-1], [5]), Traversal((0,), (0,)), 5)
        with pytest.raises(InvalidTraversal):
            validate(TaskTree([-1], [5]), Traversal((0,), (0,)), 4)

    def test_deep_chain_no_recursion(self):
        n = 20_000
        tree = TaskTree([i - 1 for i in range(n)], [1] * n)
        schedule = tuple(range(n - 1, -1, -1))
        validate(tree, Traversal(schedule, (0,) * n), 1)


class TestIsPostorder:
    def test_chain_always_postorder(self):
        tree = chain_tree([1, 2, 3])
        assert is_postorder(tree, [2, 1, 0])

    def test_star_any_leaf_order_is_postorder(self):
        tree = star_tree(1, [1, 1, 1])
        assert is_postorder(tree, [3, 1, 2, 0])

    def test_interleaving_detected(self):
        # Two chains under a root; alternating them is not a postorder.
        tree = TaskTree([-1, 0, 0, 1, 2], [1] * 5)
        assert is_postorder(tree, [3, 1, 4, 2, 0])
        assert not is_postorder(tree, [3, 4, 1, 2, 0])

    def test_subtree_must_end_with_its_root(self):
        tree = TaskTree([-1, 0, 1, 1], [1] * 4)
        assert is_postorder(tree, [2, 3, 1, 0])

    def test_parent_scheduled_before_child_rejected(self):
        tree = TaskTree([-1, 0], [1, 1])
        assert not is_postorder(tree, [0, 1])

    @given(task_trees(max_nodes=9))
    def test_tree_postorder_method_is_postorder(self, tree: TaskTree):
        assert is_postorder(tree, tree.postorder())


class TestPropertyBased:
    @given(task_trees(max_nodes=9))
    def test_zero_io_valid_at_total_weight(self, tree: TaskTree):
        # With M = total weight any topological order fits without I/O.
        schedule = tuple(reversed(tree.topological_order()))
        validate(tree, Traversal(schedule, (0,) * tree.n), tree.total_weight())

    @given(task_trees(max_nodes=9))
    def test_full_io_always_valid_at_lb(self, tree: TaskTree):
        # Writing every non-root output fully needs exactly max(wbar).
        io = tuple(
            tree.weights[v] if tree.parents[v] != -1 else 0 for v in range(tree.n)
        )
        schedule = tuple(reversed(tree.topological_order()))
        validate(tree, Traversal(schedule, io), tree.min_feasible_memory())
