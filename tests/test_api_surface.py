"""Public-API snapshot: the typed solver surface must not drift by accident.

``repro.api`` is the stable contract every surface (CLI, batch engine,
service, external callers) builds on.  This test pins

* ``repro.api.__all__`` (the exported names),
* the field names of every request dataclass and of ``Outcome``,
* the error-code vocabulary and the exit-code contract,
* the lazily re-exported names on the top-level ``repro`` package,
* the ``py.typed`` marker (PEP 561 — the package ships its types).

Changing any of these is an API change: update the snapshot *and* the
migration notes (README / docs/architecture.md) deliberately, never as
a side effect.
"""

from __future__ import annotations

import dataclasses
import pathlib

import repro
import repro.api as api

# --------------------------------------------------------------------- #
# the snapshots (sorted, so diffs read cleanly)
# --------------------------------------------------------------------- #

API_ALL = [
    "ApiError",
    "Backend",
    "BackendError",
    "BatchRequest",
    "CLIENT_FAULT_STATUSES",
    "CanonicalRequest",
    "DEFAULT_PAGING_POLICIES",
    "ENGINE_VERSION",
    "ERROR_CODES",
    "EXIT_BAD_INPUT",
    "EXIT_OK",
    "EXIT_TRANSPORT",
    "ExactRequest",
    "HTTP_STATUS",
    "LocalBackend",
    "MAX_NODES",
    "MEMORY_POLICIES",
    "Outcome",
    "PROTOCOL_VERSION",
    "PagingRequest",
    "PoolBackend",
    "ProtocolError",
    "RemoteBackend",
    "Request",
    "SolveRequest",
    "TransportError",
    "api_error",
    "build_tree",
    "error_envelope",
    "execute_batch",
    "execute_request",
    "exit_code_for_status",
    "ok_envelope",
    "parse_request",
    "run_exact",
    "run_paging",
    "run_solve",
    "unit_seed",
]

REQUEST_FIELDS = {
    api.SolveRequest: [
        "parents", "weights", "memory", "algorithm", "timeout", "engine",
        "trace_schedule", "trace",
    ],
    api.PagingRequest: [
        "parents", "weights", "memory", "algorithm", "page_size",
        "policies", "seed", "timeout", "engine", "trace",
    ],
    api.ExactRequest: [
        "parents", "weights", "memory", "max_states", "node_limit",
        "timeout", "engine", "trace",
    ],
    api.BatchRequest: [
        "trees", "algorithms", "bound", "memory", "engine", "forest",
    ],
}

OUTCOME_FIELDS = [
    "ok", "key", "result", "error_code", "error_message", "error_status",
    "cached", "deduped", "backend", "elapsed_seconds", "timings",
]

ERROR_CODES = [
    "bad_field", "bad_frame", "bad_json", "bad_request", "internal",
    "invalid_tree", "method_not_allowed", "not_found", "payload_too_large",
    "queue_full", "timeout", "unknown_algorithm", "unknown_kind",
    "unknown_policy", "unsolvable", "unsupported_media_type",
    "unsupported_wire_version", "version_skew",
]


class TestApiSurface:
    def test_all_is_pinned(self):
        assert sorted(api.__all__) == API_ALL
        # every exported name must actually resolve
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_request_fields_are_pinned(self):
        for cls, fields in REQUEST_FIELDS.items():
            assert [f.name for f in dataclasses.fields(cls)] == fields, cls

    def test_outcome_fields_are_pinned(self):
        assert [f.name for f in dataclasses.fields(api.Outcome)] == OUTCOME_FIELDS

    def test_error_vocabulary_is_pinned(self):
        assert sorted(api.ERROR_CODES) == ERROR_CODES
        assert api.ERROR_CODES == frozenset(api.HTTP_STATUS)
        assert (api.EXIT_OK, api.EXIT_TRANSPORT, api.EXIT_BAD_INPUT) == (0, 1, 2)

    def test_request_kinds_are_pinned(self):
        assert api.SolveRequest.kind == "solve"
        assert api.PagingRequest.kind == "paging"
        assert api.ExactRequest.kind == "exact"
        assert api.BatchRequest.kind == "batch"


class TestTopLevelReexports:
    def test_api_names_reachable_from_repro(self):
        for name in repro._API_EXPORTS:
            assert getattr(repro, name) is getattr(api, name)
        assert set(repro._API_EXPORTS) <= set(repro.__all__)

    def test_service_is_importable_as_promised(self):
        # the package docstring promises repro.service; it must resolve
        assert repro.service.ServiceClient is not None

    def test_unknown_attribute_still_raises(self):
        try:
            repro.definitely_not_a_name
        except AttributeError as exc:
            assert "definitely_not_a_name" in str(exc)
        else:  # pragma: no cover - defends the lazy __getattr__ hook
            raise AssertionError("expected AttributeError")


class TestTypingMarker:
    def test_py_typed_ships_with_the_package(self):
        marker = pathlib.Path(repro.__file__).with_name("py.typed")
        assert marker.is_file()

    def test_py_typed_is_declared_package_data(self):
        pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
        assert 'py.typed' in pyproject.read_text(encoding="utf-8")
