"""Tests for the whole-node (integral) I/O variant."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.integral_io import (
    integrality_gap,
    min_whole_node_io_brute,
    min_whole_node_io_given_schedule,
    whole_node_fif,
)
from repro.core.simulator import InfeasibleSchedule, simulate_fif
from repro.core.tree import TaskTree, chain_tree, star_tree

from .conftest import trees_with_memory


def two_chain_tree() -> TaskTree:
    """root(1) <- {A(2) <- leafA(5), B(3) <- leafB(6)}"""
    return TaskTree([-1, 0, 1, 0, 3], [1, 2, 5, 3, 6])


class TestWholeNodeGreedy:
    def test_no_io_with_ample_memory(self):
        tree = two_chain_tree()
        res = whole_node_fif(tree, [2, 1, 4, 3, 0], 100)
        assert res.io_volume == 0 and not res.evicted

    def test_whole_eviction_overshoots(self):
        # Fractional FiF writes exactly 1 unit of A; integral must write
        # the whole 2-unit output.
        tree = two_chain_tree()
        schedule = [2, 1, 4, 3, 0]
        frac = simulate_fif(tree, schedule, 7).io_volume
        whole = whole_node_fif(tree, schedule, 7)
        assert frac == 1
        assert whole.io_volume == 2
        assert whole.evicted == {1}

    def test_infeasible_raises(self):
        tree = chain_tree([1, 9])
        with pytest.raises(InfeasibleSchedule):
            whole_node_fif(tree, [1, 0], 8)

    def test_zero_weight_nodes_skipped(self):
        tree = TaskTree([-1, 0, 1], [2, 0, 2])
        res = whole_node_fif(tree, [2, 1, 0], 2)
        assert res.io_volume == 0

    @given(trees_with_memory())
    @settings(max_examples=60)
    def test_integral_at_least_fractional(self, tree_memory):
        tree, memory = tree_memory
        schedule = list(reversed(tree.topological_order()))
        frac = simulate_fif(tree, schedule, memory).io_volume
        whole = whole_node_fif(tree, schedule, memory)
        assert whole.io_volume >= frac
        assert whole.io_volume == sum(tree.weights[v] for v in whole.evicted)


class TestExactGivenSchedule:
    def test_matches_greedy_when_greedy_is_right(self):
        tree = two_chain_tree()
        schedule = [2, 1, 4, 3, 0]
        exact = min_whole_node_io_given_schedule(tree, schedule, 7)
        assert exact.io_volume == 2

    def test_beats_greedy_on_knapsack_instance(self):
        # Overflow of 1 with actives {3, 2}: greedy (furthest-first) may
        # evict the 3-unit output where evicting the 2-unit one suffices.
        # root(1) <- {a(3) <- x(6), b(2) <- y(6), c(1) <- z(6)}
        tree = TaskTree(
            [-1, 0, 1, 0, 3, 0, 5],
            [1, 3, 6, 2, 6, 1, 6],
        )
        # schedule: x, a, y, b, z, c, root; M = 8.
        schedule = [2, 1, 4, 3, 6, 5, 0]
        greedy = whole_node_fif(tree, schedule, 8)
        exact = min_whole_node_io_given_schedule(tree, schedule, 8)
        assert exact.io_volume <= greedy.io_volume
        frac = simulate_fif(tree, schedule, 8).io_volume
        assert exact.io_volume >= frac

    @given(trees_with_memory(max_nodes=6))
    @settings(max_examples=40)
    def test_exact_never_above_greedy(self, tree_memory):
        tree, memory = tree_memory
        schedule = list(reversed(tree.topological_order()))
        greedy = whole_node_fif(tree, schedule, memory)
        exact = min_whole_node_io_given_schedule(tree, schedule, memory)
        assert exact.io_volume <= greedy.io_volume
        assert exact.io_volume >= simulate_fif(tree, schedule, memory).io_volume


class TestBruteForce:
    def test_star_known_value(self):
        tree = star_tree(1, [2, 2])
        # M = 4 fits everything: zero I/O.
        io, _ = min_whole_node_io_brute(tree, 4)
        assert io == 0

    def test_figure_2b_integral_optimum(self):
        from repro.datasets.instances import figure_2b

        inst = figure_2b()
        io, schedule = min_whole_node_io_brute(inst.tree, inst.memory)
        # Fractional optimum is 3; integral must be >= and is exactly 3
        # (the witness writes a whole 3-unit output).
        assert io == 3
        exact = min_whole_node_io_given_schedule(inst.tree, schedule, inst.memory)
        assert exact.io_volume == 3

    @given(trees_with_memory(max_nodes=5))
    @settings(max_examples=30)
    def test_integral_optimum_at_least_fractional_optimum(self, tree_memory):
        from repro.algorithms.brute_force import min_io_brute

        tree, memory = tree_memory
        frac, _ = min_io_brute(tree, memory)
        whole, _ = min_whole_node_io_brute(tree, memory)
        assert whole >= frac


class TestIntegralityGap:
    def test_gap_fields(self):
        tree = two_chain_tree()
        gap = integrality_gap(tree, [2, 1, 4, 3, 0], 7, exact=True)
        assert gap.fractional == 1
        assert gap.integral_greedy == 2
        assert gap.integral_exact == 2
        assert gap.gap == 1

    def test_gap_without_exact_uses_greedy(self):
        tree = two_chain_tree()
        gap = integrality_gap(tree, [2, 1, 4, 3, 0], 7)
        assert gap.integral_exact is None
        assert gap.gap == 1

    def test_zero_gap_when_memory_ample(self):
        tree = two_chain_tree()
        gap = integrality_gap(tree, [2, 1, 4, 3, 0], 100, exact=True)
        assert gap.fractional == gap.integral_greedy == gap.integral_exact == 0
