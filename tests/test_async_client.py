"""Behavior tests for :class:`repro.service.aioclient.AsyncServiceClient`.

The pipelined client's contract, against real sockets throughout:

* many in-flight submissions complete **out of order** across the pool
  while every response still lands on the future that asked for it;
* connection reuse survives the server hanging up at its keep-alive
  horizon (and even a close-per-response server, via orderly-close
  resubmission that never spends the retry budget);
* cancelling a caller mid-flight leaves the pool consistent — the
  abandoned slot drains and later submissions keep working;
* ``429``/``504`` envelopes surface as :class:`ServiceError` with the
  taxonomy's codes and statuses, exactly like the sync client;
* ``wire="auto"`` falls back to JSON — stickily against a pre-frame
  server, per request for unframable payloads.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.datasets.instances import figure_2b
from repro.experiments.registry import ALGORITHMS, get_algorithm, register_algorithm
from repro.service import (
    AsyncServiceClient,
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceError,
    parse_request,
)

TREE = figure_2b().tree
TREE_DICT = TREE.to_dict()


def _request(**overrides):
    base = {"kind": "solve", "tree": TREE_DICT, "memory": 6, "algorithm": "RecExpand"}
    base.update(overrides)
    return base


def _slow_strategy(tree, memory):
    time.sleep(0.3)
    return get_algorithm("OptMinMem")(tree, memory)


@pytest.fixture
def slow_algorithm():
    name = "TestSlowAsync"
    if name not in ALGORITHMS:
        register_algorithm(name, _slow_strategy)
    yield name
    ALGORITHMS.pop(name, None)


@pytest.fixture
def server():
    config = ServerConfig(port=0, workers=0, inline_threads=2)
    with ServerThread(config) as thread:
        yield thread


def _drive(coro):
    return asyncio.run(coro)


class TestPipelining:
    def test_gathered_submissions_all_match_their_requests(self, server):
        requests = [_request(memory=6 + i) for i in range(12)]
        want_keys = [parse_request(r).key() for r in requests]
        offline = {
            6 + i: get_algorithm("RecExpand")(TREE, 6 + i).io_volume
            for i in range(12)
        }

        async def run():
            async with AsyncServiceClient(
                port=server.port, max_connections=2
            ) as client:
                return await asyncio.gather(*(client.submit(r) for r in requests))

        envelopes = _drive(run())
        assert [e["key"] for e in envelopes] == want_keys
        assert [e["result"]["io_volume"] for e in envelopes] == [
            offline[6 + i] for i in range(12)
        ]

    def test_completions_arrive_out_of_submission_order(
        self, server, slow_algorithm
    ):
        slow = _request(algorithm=slow_algorithm)
        fast = _request(memory=7)

        async def run():
            order = []
            async with AsyncServiceClient(
                port=server.port, max_connections=2
            ) as client:
                async def tagged(tag, request):
                    envelope = await client.submit(request)
                    order.append(tag)
                    return envelope

                # the slow request is submitted FIRST but must finish
                # last; the stagger keeps the two out of one micro-batch
                # (a batch resolves all its futures together)
                slow_task = asyncio.ensure_future(tagged("slow", slow))
                await asyncio.sleep(0.1)
                results = await asyncio.gather(
                    slow_task, tagged("fast", fast)
                )
            return order, results

        order, results = _drive(run())
        assert order == ["fast", "slow"]
        assert all(e["ok"] for e in results)
        assert results[0]["key"] == parse_request(slow).key()
        assert results[1]["key"] == parse_request(fast).key()

    def test_single_connection_pipelining_matches_fifo(self, server):
        # one connection: responses must pair with requests purely by
        # FIFO order, over a burst large enough to interleave
        requests = [_request(memory=6 + i) for i in range(16)]
        want = [parse_request(r).key() for r in requests]

        async def run():
            async with AsyncServiceClient(
                port=server.port, max_connections=1
            ) as client:
                envelopes = await asyncio.gather(
                    *(client.submit(r) for r in requests)
                )
                assert len(client._conns) <= 1
                return envelopes

        envelopes = _drive(run())
        assert [e["key"] for e in envelopes] == want


class TestConnectionLifecycles:
    def test_reuse_survives_server_keepalive_close(self):
        config = ServerConfig(
            port=0, workers=0, inline_threads=2, keepalive_timeout=0.3
        )
        with ServerThread(config) as thread:
            async def run():
                async with AsyncServiceClient(port=thread.port) as client:
                    first = await client.submit(_request())
                    # outlive the server's keep-alive horizon: the pooled
                    # connection is closed server-side under the client
                    await asyncio.sleep(0.8)
                    second = await client.submit(_request(memory=7))
                    return first, second

            first, second = _drive(run())
        assert first["ok"] and second["ok"]
        assert first["key"] != second["key"]

    def test_burst_against_a_close_per_response_server(self):
        # keepalive_timeout <= 0 restores close-after-every-response; a
        # pipelined burst must still complete via orderly-close recovery
        config = ServerConfig(
            port=0, workers=0, inline_threads=2, keepalive_timeout=0.0
        )
        requests = [_request(memory=6 + i) for i in range(10)]
        want = [parse_request(r).key() for r in requests]
        with ServerThread(config) as thread:
            async def run():
                async with AsyncServiceClient(
                    port=thread.port, max_connections=2
                ) as client:
                    return await asyncio.gather(
                        *(client.submit(r) for r in requests)
                    )

            envelopes = _drive(run())
        assert [e["key"] for e in envelopes] == want

    def test_cancellation_mid_flight_leaves_the_pool_consistent(
        self, server, slow_algorithm
    ):
        async def run():
            async with AsyncServiceClient(
                port=server.port, max_connections=1
            ) as client:
                victim = asyncio.ensure_future(
                    client.submit(_request(algorithm=slow_algorithm))
                )
                chaser = asyncio.ensure_future(client.submit(_request(memory=8)))
                await asyncio.sleep(0.05)  # both pipelined and in flight
                victim.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await victim
                # the cancelled slot must drain without desyncing FIFO
                # matching: the chaser and every later submission still
                # get *their* responses
                first = await chaser
                later = await asyncio.gather(
                    *(client.submit(_request(memory=9 + i)) for i in range(4))
                )
                assert len(client._conns) <= 1
                return first, later

        first, later = _drive(run())
        assert first["key"] == parse_request(_request(memory=8)).key()
        assert [e["key"] for e in later] == [
            parse_request(_request(memory=9 + i)).key() for i in range(4)
        ]

    def test_submitting_after_close_raises_transport(self, server):
        async def run():
            client = AsyncServiceClient(port=server.port)
            assert (await client.health())["ok"]
            await client.close()
            with pytest.raises(ServiceError) as err:
                await client.submit(_request())
            return err.value

        error = _drive(run())
        assert error.code == "transport"


class TestErrorTaxonomy:
    def test_queue_full_surfaces_as_429(self, tmp_path, slow_algorithm):
        config = ServerConfig(
            port=0, workers=0, inline_threads=1, queue_limit=1,
            max_batch=1, batch_window_ms=0.5,
        )
        with ServerThread(config) as thread:
            async def run():
                async with AsyncServiceClient(port=thread.port) as client:
                    return await asyncio.gather(
                        *(
                            client.submit(
                                _request(algorithm=slow_algorithm, memory=6 + i)
                            )
                            for i in range(6)
                        ),
                        return_exceptions=True,
                    )

            results = _drive(run())
        succeeded = [r for r in results if isinstance(r, dict)]
        rejected = [r for r in results if isinstance(r, ServiceError)]
        assert succeeded, "the service must keep serving under overload"
        assert rejected, "a full queue must reject, not buffer unboundedly"
        assert all(e.code == "queue_full" and e.status == 429 for e in rejected)

    def test_deadline_surfaces_as_504(self, server, slow_algorithm):
        async def run():
            async with AsyncServiceClient(port=server.port) as client:
                with pytest.raises(ServiceError) as err:
                    await client.submit(
                        _request(algorithm=slow_algorithm, timeout=0.05)
                    )
                return err.value

        error = _drive(run())
        assert error.code == "timeout"
        assert error.status == 504

    def test_validation_errors_keep_their_codes(self, server):
        async def run():
            async with AsyncServiceClient(port=server.port) as client:
                with pytest.raises(ServiceError) as err:
                    await client.submit(_request(algorithm="Nope"))
                return err.value

        error = _drive(run())
        assert error.code == "unknown_algorithm"
        assert error.status == 400


# --------------------------------------------------------------------- #
# wire negotiation fallbacks (old servers, unframable requests)
# --------------------------------------------------------------------- #


class _OldServerHandler(BaseHTTPRequestHandler):
    """A pre-frame server: ignores Content-Type and tries JSON on everything."""

    protocol_version = "HTTP/1.1"
    frames_seen = 0

    def do_POST(self):  # noqa: N802 - BaseHTTPRequestHandler API
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length)
        try:
            json.loads(body)
        except ValueError:
            if body.startswith(b"RIOW"):
                type(self).frames_seen += 1
            status, envelope = 400, {
                "ok": False,
                "error": {"code": "bad_json",
                          "message": "request body is not valid JSON"},
            }
        else:
            status, envelope = 200, {
                "ok": True, "key": "old", "cached": False, "deduped": False,
                "result": {"io_volume": 0},
            }
        payload = json.dumps(envelope).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args):  # quiet
        pass


@pytest.fixture
def old_server():
    _OldServerHandler.frames_seen = 0
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _OldServerHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd.server_address[1]
    finally:
        httpd.shutdown()
        httpd.server_close()


class TestWireFallback:
    def test_async_auto_falls_back_stickily_on_an_old_server(self, old_server):
        async def run():
            async with AsyncServiceClient(port=old_server, wire="auto") as client:
                first = await client.submit(_request())
                second = await client.submit(_request(memory=7))
                assert not client._wire_ok  # sticky: later submits skip frames
                return first, second

        first, second = _drive(run())
        assert first["ok"] and second["ok"]
        # exactly one frame probe: the fallback is sticky, not per request
        assert _OldServerHandler.frames_seen == 1

    def test_sync_auto_falls_back_stickily_on_an_old_server(self, old_server):
        client = ServiceClient(port=old_server, wire="auto")
        assert client.submit(_request())["ok"]
        assert client.submit(_request(memory=7))["ok"]
        assert not client._wire_ok
        assert _OldServerHandler.frames_seen == 1

    def test_binary_mode_surfaces_the_old_server_error(self, old_server):
        client = ServiceClient(port=old_server, wire="binary")
        with pytest.raises(ServiceError) as err:
            client.submit(_request())
        assert err.value.code == "bad_json"

    def test_unframable_request_falls_back_per_request(self, server):
        # beyond-int64 weights cannot ride a frame; auto mode must ship
        # them as JSON and come back with the same outcome JSON gets
        request = {
            "kind": "solve",
            "tree": {"parents": [-1], "weights": [2**70]},
            "memory": 10,
        }

        async def run():
            async with AsyncServiceClient(port=server.port, wire="auto") as client:
                with pytest.raises(ServiceError) as err:
                    await client.submit(request)
                assert client._wire_ok  # per-request fallback, not sticky
                return err.value

        async_error = _drive(run())
        with pytest.raises(ServiceError) as sync_err:
            ServiceClient(port=server.port, wire="json").submit(request)
        assert async_error.code == sync_err.value.code
        assert async_error.status == sync_err.value.status
