"""Wire-conformance suite for the binary frame protocol.

Two jobs, both about trust at the byte level:

* **Golden bytes** — the exact frame layout (head offsets, codec tags,
  column order) is pinned against hardcoded hex.  Any drift in
  :mod:`repro.service.wire` that changes bytes on the wire fails here
  first, deliberately: bump ``WIRE_VERSION`` and regenerate, never
  drift silently.
* **Fuzz** — a seeded corpus of truncated, length-lying,
  version-skewed and bit-flipped frames.  Every mutation must yield a
  clean :class:`~repro.api.errors.ProtocolError` (or, for bit flips
  that happen to land on another valid frame, a complete structurally
  sound decode) — never a crash, hang, or partial decode.  The same
  contract is then checked end-to-end over a live socket: garbage
  frames come back as well-formed HTTP error envelopes with frame-level
  codes, and plain JSON clients are untouched by the negotiation.
"""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.api import MAX_NODES, ProtocolError, parse_request
from repro.api.errors import HTTP_STATUS
from repro.api.outcome import PROTOCOL_VERSION, error_envelope, ok_envelope
from repro.api.requests import ENGINE_VERSION
from repro.service import wire
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServerConfig, ServerThread
from repro.service.wire import (
    FRAME_REQUEST,
    FRAME_RESPONSE,
    WIRE_CONTENT_TYPE,
    WIRE_VERSION,
    WireEncodeError,
    decode_request_frame,
    decode_response_frame,
    encode_request_frame,
    encode_response_frame,
    request_from_frame,
)

REQUEST = {
    "kind": "solve",
    "tree": {"parents": [-1, 0, 0], "weights": [2, 3, 4]},
    "memory": 9,
    "algorithm": "RecExpand",
}

ENVELOPE = {
    "ok": True,
    "protocol": 1,
    "key": "deadbeef",
    "cached": False,
    "deduped": False,
    "result": {"io_volume": 3},
}

# the pinned wire form of the two values above (wire version 1).  If a
# deliberate layout change regenerates these, bump WIRE_VERSION with it.
GOLDEN_REQUEST_HEX = (
    "52494f5701010100020000004500000050000000000000006d0300000009000000616c"
    "676f726974686d7309000000526563457870616e64040000006b696e647305000000736f"
    "6c7665060000006d656d6f72796909000000000000000100000000000000030000000000"
    "000000000000000000000300000000000000ffffffffffffffff00000000000000000000"
    "000000000000020000000000000003000000000000000400000000000000"
)
GOLDEN_RESPONSE_HEX = (
    "52494f5701020100020000007100000000000000000000006d060000000600000063616368"
    "656446070000006465647570656446030000006b65797308000000646561646265656602"
    "0000006f6b540800000070726f746f636f6c69010000000000000006000000726573756c"
    "746d0100000009000000696f5f766f6c756d65690300000000000000"
)


def _mutant_is_clean(decoder, data) -> None:
    """The conformance contract for one mutated frame."""
    try:
        decoder(data)
    except ProtocolError as exc:
        # a clean wire-status error: stable code, client-fault status
        assert exc.code in HTTP_STATUS
        assert exc.status in (400, 413)
    # a successful decode is acceptable only for mutations that happen
    # to form another valid frame (bit flips inside payload values);
    # the decoders' own postconditions guarantee structural soundness.


class TestGoldenBytes:
    def test_request_frame_bytes_are_pinned(self):
        assert encode_request_frame(REQUEST).hex() == GOLDEN_REQUEST_HEX

    def test_response_frame_bytes_are_pinned(self):
        assert encode_response_frame(ENVELOPE).hex() == GOLDEN_RESPONSE_HEX

    def test_head_layout_is_pinned(self):
        frame = encode_request_frame(REQUEST)
        magic, version, kind, protocol, engine, hlen, plen = struct.unpack_from(
            "<4sBBHIIQ", frame, 0
        )
        assert magic == b"RIOW"
        assert version == WIRE_VERSION == 1
        assert kind == FRAME_REQUEST == 1
        assert protocol == PROTOCOL_VERSION
        assert engine == ENGINE_VERSION
        assert 24 + hlen + plen == len(frame)

    def test_payload_is_the_packed_forest_layout(self):
        frame = encode_request_frame(REQUEST)
        hlen = struct.unpack_from("<I", frame, 12)[0]
        words = np.frombuffer(frame, dtype="<i8", offset=24 + hlen)
        # [n_trees, total] + offsets + parents + weights
        assert words[:4].tolist() == [1, 3, 0, 3]
        assert words[4:7].tolist() == [-1, 0, 0]
        assert words[7:].tolist() == [2, 3, 4]

    def test_response_head_is_pinned(self):
        frame = encode_response_frame(ENVELOPE)
        magic, version, kind, protocol, engine, hlen, plen = struct.unpack_from(
            "<4sBBHIIQ", frame, 0
        )
        assert (magic, version, kind) == (b"RIOW", 1, FRAME_RESPONSE)
        assert plen == 0 and 24 + hlen == len(frame)


class TestRoundTrip:
    def test_request_decodes_to_the_same_typed_request(self):
        frame = encode_request_frame(REQUEST)
        assert request_from_frame(frame) == parse_request(REQUEST)
        assert request_from_frame(frame).key() == parse_request(REQUEST).key()

    def test_response_envelope_round_trips_exactly(self):
        for envelope in (
            ENVELOPE,
            ok_envelope(
                {"io": {"0": 1, "7": 2}, "perf": 1.25, "sched": [4, 2, 0],
                 "big": 2**90, "none": None, "flags": [True, False],
                 "mixed": [1, "a", 2.5]},
                key="k", cached=True, deduped=False,
            ),
            error_envelope("unsolvable", "no feasible traversal"),
        ):
            assert decode_response_frame(encode_response_frame(envelope)) == envelope

    def test_floats_round_trip_bit_exact(self):
        values = [0.1, 1e-300, 1e300, -0.0, 2.0**-1074, 3.141592653589793]
        envelope = {"ok": True, "values": values}
        back = decode_response_frame(encode_response_frame(envelope))
        assert [struct.pack("<d", v) for v in back["values"]] == [
            struct.pack("<d", v) for v in values
        ]

    def test_unframable_requests_signal_fallback(self):
        for bad in (
            {"kind": "solve", "memory": 1},  # no tree at all
            {"kind": "solve", "tree": {"parents": [-1]}, "memory": 1},
            {"kind": "solve", "tree": {"parents": [-1], "weights": [2**70]},
             "memory": 1},  # beyond int64
            {"kind": "solve", "tree": {"parents": [-1], "weights": ["x"]},
             "memory": 1},
            {"kind": "solve", "tree": {"parents": [], "weights": []},
             "memory": 1},
        ):
            with pytest.raises(WireEncodeError):
                encode_request_frame(bad)


class TestValidationThroughFrames:
    """The trusted decode must reject exactly what the JSON path rejects."""

    def test_invalid_tree_is_invalid_tree_not_bad_frame(self):
        frame = encode_request_frame({
            "kind": "solve",
            "tree": {"parents": [0, 1, 2], "weights": [1, 1, 1]},  # a cycle
            "memory": 4,
        })
        with pytest.raises(ProtocolError) as err:
            request_from_frame(frame)
        assert err.value.code == "invalid_tree"

    def test_node_limit_is_payload_too_large(self):
        n = MAX_NODES + 1
        parents = np.zeros(n, dtype="<i8")
        parents[0] = -1
        parents[1:] = 0
        frame = encode_request_frame({
            "kind": "solve",
            "tree": {"parents": parents, "weights": np.ones(n, dtype="<i8")},
            "memory": 10,
        })
        with pytest.raises(ProtocolError) as err:
            request_from_frame(frame)
        assert err.value.code == "payload_too_large"

    def test_field_validation_still_runs(self):
        frame = encode_request_frame({
            "kind": "solve",
            "tree": {"parents": [-1], "weights": [2]},
            "memory": 4,
            "algorithm": "Nope",
        })
        with pytest.raises(ProtocolError) as err:
            request_from_frame(frame)
        assert err.value.code == "unknown_algorithm"

    def test_decoded_trusted_tree_matches_json_parse(self):
        frame = encode_request_frame(REQUEST)
        from_frame = request_from_frame(frame)
        from_json = parse_request(json.loads(json.dumps(REQUEST)))
        assert from_frame == from_json
        # the trusted columns must be plain Python ints, not numpy
        # scalars: workers re-validate payloads with exact type checks
        assert all(type(p) is int for p in from_frame.parents)
        assert all(type(w) is int for w in from_frame.weights)


class TestFuzzTruncation:
    def test_every_truncation_of_a_request_frame_is_clean(self):
        frame = encode_request_frame(REQUEST)
        for cut in range(len(frame)):
            with pytest.raises(ProtocolError):
                decode_request_frame(frame[:cut])

    def test_every_truncation_of_a_response_frame_is_clean(self):
        frame = encode_response_frame(ENVELOPE)
        for cut in range(len(frame)):
            with pytest.raises(ProtocolError):
                decode_response_frame(frame[:cut])

    def test_trailing_junk_is_rejected(self):
        frame = encode_request_frame(REQUEST)
        with pytest.raises(ProtocolError):
            decode_request_frame(frame + b"\x00")


class TestFuzzLengthLies:
    """Header/payload length fields that lie must fail cleanly — and
    must never trigger allocations sized by the lie."""

    @pytest.mark.parametrize("offset,fmt", [(12, "<I"), (16, "<Q")])
    @pytest.mark.parametrize(
        "value", [0, 1, 7, 2**31 - 1, 2**32 - 1, 2**63 - 1, 2**64 - 1]
    )
    def test_lying_head_lengths(self, offset, fmt, value):
        frame = bytearray(encode_request_frame(REQUEST))
        try:
            struct.pack_into(fmt, frame, offset, value)
        except struct.error:
            pytest.skip("value does not fit the field")
        with pytest.raises(ProtocolError) as err:
            decode_request_frame(bytes(frame))
        assert err.value.code == "bad_frame"

    def test_lying_codec_counts(self):
        # inflate every u32 that prefixes a codec length/count; the
        # decoder must bound-check against remaining bytes, not allocate
        frame = bytearray(encode_request_frame(REQUEST))
        hlen = struct.unpack_from("<I", frame, 12)[0]
        for pos in range(24, 24 + hlen - 3):
            mutant = bytearray(frame)
            struct.pack_into("<I", mutant, pos, 2**32 - 1)
            _mutant_is_clean(decode_request_frame, bytes(mutant))

    def test_lying_tree_head(self):
        # n_trees and total live in the payload head; lie about both
        frame = bytearray(encode_request_frame(REQUEST))
        hlen = struct.unpack_from("<I", frame, 12)[0]
        base = 24 + hlen
        for word, value in [(0, 2), (0, 0), (0, -1), (1, 10**6), (1, -3)]:
            mutant = bytearray(frame)
            struct.pack_into("<q", mutant, base + 8 * word, value)
            with pytest.raises(ProtocolError) as err:
                decode_request_frame(bytes(mutant))
            assert err.value.code == "bad_frame"


class TestFuzzVersionSkew:
    def test_wire_version_mismatch(self):
        frame = bytearray(encode_request_frame(REQUEST))
        for version in (0, 2, 255):
            mutant = bytearray(frame)
            mutant[4] = version
            with pytest.raises(ProtocolError) as err:
                decode_request_frame(bytes(mutant))
            assert err.value.code == "unsupported_wire_version"

    def test_protocol_and_engine_skew(self):
        frame = encode_request_frame(REQUEST)
        skewed_protocol = bytearray(frame)
        struct.pack_into("<H", skewed_protocol, 6, PROTOCOL_VERSION + 1)
        skewed_engine = bytearray(frame)
        struct.pack_into("<I", skewed_engine, 8, ENGINE_VERSION + 7)
        for mutant in (skewed_protocol, skewed_engine):
            with pytest.raises(ProtocolError) as err:
                decode_request_frame(bytes(mutant))
            assert err.value.code == "version_skew"

    def test_frame_kind_confusion(self):
        request = encode_request_frame(REQUEST)
        response = encode_response_frame(ENVELOPE)
        with pytest.raises(ProtocolError) as err:
            decode_request_frame(response)
        assert err.value.code == "bad_frame"
        with pytest.raises(ProtocolError) as err:
            decode_response_frame(request)
        assert err.value.code == "bad_frame"


class TestFuzzBitFlips:
    """Seeded single- and multi-bit corruption over the whole frame."""

    def test_request_frame_bit_flips(self):
        frame = encode_request_frame(REQUEST)
        rng = np.random.default_rng(0x52494F57)
        for _ in range(600):
            mutant = bytearray(frame)
            for _ in range(int(rng.integers(1, 4))):
                pos = int(rng.integers(0, len(mutant)))
                mutant[pos] ^= 1 << int(rng.integers(0, 8))
            _mutant_is_clean(decode_request_frame, bytes(mutant))
            _mutant_is_clean(request_from_frame, bytes(mutant))

    def test_response_frame_bit_flips(self):
        frame = encode_response_frame(ENVELOPE)
        rng = np.random.default_rng(0x574F4952)
        for _ in range(600):
            mutant = bytearray(frame)
            for _ in range(int(rng.integers(1, 4))):
                pos = int(rng.integers(0, len(mutant)))
                mutant[pos] ^= 1 << int(rng.integers(0, 8))
            _mutant_is_clean(decode_response_frame, bytes(mutant))

    def test_random_garbage(self):
        rng = np.random.default_rng(20170417)
        for _ in range(300):
            size = int(rng.integers(0, 256))
            blob = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
            _mutant_is_clean(decode_request_frame, blob)
            _mutant_is_clean(decode_response_frame, blob)


# --------------------------------------------------------------------- #
# the same contract, end to end over a live socket
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def server():
    config = ServerConfig(port=0, workers=0, inline_threads=2)
    with ServerThread(config) as thread:
        yield thread


def _post_raw(thread, body: bytes, content_type: str, accept: str | None = None):
    import http.client

    conn = http.client.HTTPConnection(thread.host, thread.port, timeout=10)
    try:
        headers = {"Content-Type": content_type}
        if accept:
            headers["Accept"] = accept
        conn.request("POST", "/v1/submit", body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.getheader("Content-Type"), response.read()
    finally:
        conn.close()


class TestServerConformance:
    def test_garbage_frame_is_a_400_bad_frame(self, server):
        status, ctype, raw = _post_raw(server, b"not a frame", WIRE_CONTENT_TYPE)
        assert status == 400
        body = json.loads(raw)
        assert body["error"]["code"] == "bad_frame"

    def test_truncated_frame_over_the_socket(self, server):
        frame = encode_request_frame(REQUEST)
        status, _, raw = _post_raw(server, frame[:40], WIRE_CONTENT_TYPE)
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "bad_frame"

    def test_version_skewed_frame_over_the_socket(self, server):
        mutant = bytearray(encode_request_frame(REQUEST))
        struct.pack_into("<I", mutant, 8, ENGINE_VERSION + 1)
        status, _, raw = _post_raw(server, bytes(mutant), WIRE_CONTENT_TYPE)
        assert status == 400
        assert json.loads(raw)["error"]["code"] == "version_skew"

    def test_unknown_media_type_is_a_415(self, server):
        status, _, raw = _post_raw(server, b"<xml/>", "application/xml")
        assert status == 415
        assert json.loads(raw)["error"]["code"] == "unsupported_media_type"

    def test_binary_accept_gets_a_frame_response(self, server):
        frame = encode_request_frame(REQUEST)
        status, ctype, raw = _post_raw(
            server, frame, WIRE_CONTENT_TYPE, accept=WIRE_CONTENT_TYPE
        )
        assert status == 200
        assert ctype.split(";")[0].strip() == WIRE_CONTENT_TYPE
        envelope = decode_response_frame(raw)
        assert envelope["ok"] is True

    def test_json_clients_are_untouched(self, server):
        # the exact pre-frame client behaviour: JSON in, JSON out
        client = ServiceClient(port=server.port, wire="json")
        envelope = client.submit(REQUEST)
        assert envelope["ok"] is True
        status, ctype, raw = _post_raw(
            server, json.dumps(REQUEST).encode(), "application/json"
        )
        assert status == 200 and ctype.split(";")[0] == "application/json"
        assert json.loads(raw)["ok"] is True

    def test_json_and_binary_answer_identically(self, server):
        client_json = ServiceClient(port=server.port, wire="json")
        client_bin = ServiceClient(port=server.port, wire="binary")
        e1 = client_json.submit(REQUEST)
        e2 = client_bin.submit(REQUEST)
        assert e1["result"] == e2["result"]
        assert e1["key"] == e2["key"]

    def test_frame_error_codes_surface_through_the_client(self, server):
        client = ServiceClient(port=server.port, wire="binary")
        with pytest.raises(ServiceError) as err:
            client.submit({
                "kind": "solve",
                "tree": {"parents": [0, 1], "weights": [1, 1]},
                "memory": 2,
            })
        assert err.value.code == "invalid_tree"
        assert err.value.status == 400
