"""Tests for the parallel batch experiment engine (repro.experiments.batch)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.datasets.store import ResultCache, cache_key
from repro.experiments.batch import (
    BatchStats,
    counterexample_units,
    merge_shards,
    run_batch_counterexamples,
    run_batch_figures,
    run_batch_report,
    run_shard,
    shard_figure,
)
from repro.experiments.figures import FIGURE_SPECS, figure10
from repro.experiments.runner import run_all, run_counterexamples, run_figures


def _strip_timing(report_dict):
    d = json.loads(json.dumps(report_dict))
    d.pop("started_at", None)
    d.pop("elapsed_seconds", None)
    d.pop("batch", None)
    for f in d.get("figures", {}).values():
        f.pop("seconds", None)
        if f.get("differing"):
            f["differing"].pop("seconds", None)
    return d


class TestSharding:
    def test_shards_cover_dataset_in_order(self):
        shards = shard_figure("fig10", "tiny", shard_size=3)
        assert [s.index for s in shards] == list(range(len(shards)))
        assert all(len(s.trees) <= 3 for s in shards)
        assert all(len(s.trees) == 3 for s in shards[:-1])

    def test_shard_boundaries_independent_of_jobs(self):
        # Shards are a function of the data alone; two computations agree.
        a = shard_figure("fig10", "tiny")
        b = shard_figure("fig10", "tiny")
        assert [s.key() for s in a] == [s.key() for s in b]

    def test_shard_keys_distinct_across_figures_and_shards(self):
        keys = [
            s.key()
            for fid in ("fig8", "fig10")
            for s in shard_figure(fid, "tiny", shard_size=2)
        ]
        assert len(keys) == len(set(keys))

    def test_shard_seed_is_deterministic(self):
        (first_a,) = shard_figure("fig10", "tiny", shard_size=10**6)[:1]
        (first_b,) = shard_figure("fig10", "tiny", shard_size=10**6)[:1]
        assert first_a.seed == first_b.seed

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ValueError):
            shard_figure("fig10", "tiny", shard_size=0)


class TestMerge:
    def test_merge_matches_serial_run_comparison(self):
        serial = figure10("tiny")
        shards = shard_figure("fig10", "tiny", shard_size=3)
        merged = merge_shards("fig10", shards, [run_shard(s) for s in shards])
        assert merged.io_volumes == serial.io_volumes
        assert merged.memories == serial.memories
        assert merged.instance_sizes == serial.instance_sizes

    def test_merge_is_order_insensitive(self):
        shards = shard_figure("fig10", "tiny", shard_size=2)
        payloads = [run_shard(s) for s in shards]
        rev = merge_shards("fig10", list(reversed(shards)), list(reversed(payloads)))
        fwd = merge_shards("fig10", shards, payloads)
        assert rev.io_volumes == fwd.io_volumes

    def test_merge_length_mismatch_rejected(self):
        shards = shard_figure("fig10", "tiny", shard_size=4)
        with pytest.raises(ValueError):
            merge_shards("fig10", shards, [])


class TestEquivalence:
    def test_batch_figures_match_serial(self):
        serial = run_figures("tiny", figure_ids=["fig10"])
        batched = run_batch_figures("tiny", figure_ids=["fig10"])
        assert _strip_timing({"figures": serial}) == _strip_timing(
            {"figures": batched}
        )

    def test_batch_counterexamples_match_serial(self):
        assert run_batch_counterexamples() == run_counterexamples()

    def test_run_all_delegates_to_batch_when_parallel(self):
        report = run_all("tiny", jobs=2)
        assert report.batch is not None
        assert report.batch["units_computed"] == report.batch["units_total"]

    def test_parallel_report_matches_serial_report(self):
        serial = dataclasses.asdict(run_batch_report("tiny", jobs=1))
        par = dataclasses.asdict(run_batch_report("tiny", jobs=2))
        assert _strip_timing(serial) == _strip_timing(par)


class TestCache:
    def test_cold_then_warm(self, tmp_path):
        cold = run_batch_report("tiny", cache=ResultCache(tmp_path))
        assert cold.batch["cache"] == {
            "enabled": True,
            "hits": 0,
            "misses": cold.batch["units_total"],
        }
        warm = run_batch_report("tiny", cache=ResultCache(tmp_path))
        assert warm.batch["cache"]["hits"] == warm.batch["units_total"]
        assert warm.batch["units_computed"] == 0
        assert _strip_timing(dataclasses.asdict(cold)) == _strip_timing(
            dataclasses.asdict(warm)
        )

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_batch_counterexamples(cache=cache, fig2c_ks=(1,), fig2a_extensions=())
        victim = next(tmp_path.glob("*/*.json"))
        victim.write_text("{ truncated")
        cache2 = ResultCache(tmp_path)
        out = run_batch_counterexamples(
            cache=cache2, fig2c_ks=(1,), fig2a_extensions=()
        )
        assert cache2.misses == 1
        assert out == run_counterexamples(fig2c_ks=(1,), fig2a_extensions=())

    def test_cache_key_is_canonical(self):
        assert cache_key({"a": 1, "b": 2}) == cache_key({"b": 2, "a": 1})
        assert cache_key({"a": 1}) != cache_key({"a": 2})

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert len(cache) == 0
        cache.put(cache_key({"x": 1}), {"v": 1})
        assert len(cache) == 1


class TestUnits:
    def test_counterexample_units_cover_runner_instances(self):
        names = {u.name for u in counterexample_units()}
        assert names == set(run_counterexamples())

    def test_stats_serialise(self):
        stats = BatchStats(units_total=3, units_computed=2, cache_enabled=True)
        d = stats.to_dict()
        assert d["units_total"] == 3
        assert d["cache"]["enabled"] is True

    def test_specs_cover_all_figures(self):
        from repro.experiments.figures import FIGURES

        assert set(FIGURE_SPECS) == set(FIGURES)


class TestForestPath:
    """The forest shard path must be invisible in every output."""

    def test_forest_and_per_tree_payloads_identical(self):
        for fig_id in ("fig4", "fig5"):
            on = shard_figure(fig_id, "tiny", forest=True)
            off = shard_figure(fig_id, "tiny", forest=False)
            # the flag is a performance knob: keys must not move
            assert [s.key() for s in on] == [s.key() for s in off]
            assert [s.seed for s in on] == [s.seed for s in off]
            for a, b in zip(on, off):
                pa, pb = run_shard(a), run_shard(b)
                pa.pop("seconds")
                pb.pop("seconds")
                assert pa == pb

    def test_object_engine_pin_disables_forest(self):
        shard = shard_figure("fig4", "tiny", forest=True, engine="object")[0]
        payload = run_shard(shard)
        reference = run_shard(
            shard_figure("fig4", "tiny", forest=False, engine="object")[0]
        )
        payload.pop("seconds")
        reference.pop("seconds")
        assert payload == reference

    def test_shard_key_is_computed_once(self):
        shard = shard_figure("fig4", "tiny")[0]
        assert shard.key() is shard.key()  # cached canonicalisation

    def test_pinned_memory_changes_the_shard_key(self):
        """An absolute bound changes the output, so it must change the key."""
        base = shard_figure("fig4", "tiny")[0]
        assert base.memory is None  # the figure pipeline uses the bound policy
        pinned = dataclasses.replace(base, memory=7)
        other = dataclasses.replace(base, memory=9)
        assert base.key() != pinned.key()
        assert pinned.key() != other.key()

    def test_report_identical_with_and_without_forest(self):
        on = run_batch_figures("tiny", figure_ids=["fig4"], forest=True)
        off = run_batch_figures("tiny", figure_ids=["fig4"], forest=False)
        on["fig4"].pop("seconds")
        off["fig4"].pop("seconds")
        assert on == off

    def test_over_budget_shard_falls_back_to_per_tree(self):
        """Weights past the forest's int64 budget must not crash run_shard."""
        big = 2**61
        trees = ((((-1, 0, 0)), ((big, big, big))),)
        on = dataclasses.replace(
            shard_figure("fig4", "tiny", forest=True)[0], trees=trees
        )
        off = dataclasses.replace(on, forest=False)
        pa, pb = run_shard(on), run_shard(off)
        pa.pop("seconds")
        pb.pop("seconds")
        assert pa == pb
