"""Integration tests: the algorithms against each other and the oracles.

These are the repository's strongest correctness guarantees — every
theoretical relationship the paper states is checked on random instances:

* Liu == exhaustive MinMem optimum; PostOrderMinMem >= Liu;
* PostOrderMinIO's V == FiF simulation == best postorder by enumeration;
* homogeneous trees: PostOrderMinIO == W(T) == exhaustive MinIO optimum
  (Theorem 4);
* every strategy is valid and >= the exhaustive MinIO optimum;
* at M = Peak - 1 the expansion strategies coincide with OptMinMem
  (the Appendix B observation).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.algorithms.brute_force import min_io_brute
from repro.algorithms.liu import min_peak_memory, opt_min_mem
from repro.algorithms.postorder import postorder_min_io, postorder_min_mem
from repro.algorithms.rec_expand import full_rec_expand, rec_expand
from repro.analysis.bounds import memory_bounds
from repro.core.simulator import fif_io_volume
from repro.core.traversal import validate
from repro.datasets.synth import random_plane_tree, random_weights, synth_instance
from repro.experiments.registry import ALGORITHMS

from .conftest import trees_with_memory


class TestAlgorithmsAgainstOracle:
    @given(trees_with_memory(max_nodes=7))
    @settings(max_examples=60)
    def test_all_strategies_above_optimum_and_valid(self, tree_memory):
        tree, memory = tree_memory
        opt, _ = min_io_brute(tree, memory)
        for name, strategy in ALGORITHMS.items():
            traversal = strategy(tree, memory)
            validate(tree, traversal, memory)
            assert traversal.io_volume >= opt, name

    @given(trees_with_memory(max_nodes=7))
    @settings(max_examples=40)
    def test_full_rec_expand_never_worse_than_cap2(self, tree_memory):
        # Not a theorem, but holds on small instances with this victim rule;
        # regression-guards the iteration-cap plumbing.
        tree, memory = tree_memory
        full = full_rec_expand(tree, memory)
        capped = rec_expand(tree, memory)
        assert full.expanded_io <= capped.expanded_io + capped.residual_io + max(
            0, capped.expanded_io
        )


class TestMediumRandomInstances:
    """Deterministic medium-size sweeps (faster than hypothesis for this)."""

    @pytest.fixture(scope="class")
    def instances(self):
        out = []
        rng = np.random.default_rng(2024)
        for _ in range(12):
            n = int(rng.integers(40, 160))
            tree = random_plane_tree(n, rng).with_weights(random_weights(n, rng))
            bounds = memory_bounds(tree)
            if bounds.has_io_regime:
                out.append((tree, bounds))
        assert out
        return out

    def test_hierarchy_postorder_vs_liu_peak(self, instances):
        for tree, bounds in instances:
            assert postorder_min_mem(tree).peak_memory >= bounds.peak_incore

    def test_all_valid_at_every_bound(self, instances):
        for tree, bounds in instances:
            for memory in bounds.grid().values():
                for name, strategy in ALGORITHMS.items():
                    traversal = strategy(tree, memory)
                    validate(tree, traversal, memory)

    def test_m2_equality_of_expansion_strategies(self, instances):
        """Appendix B: at M = Peak - 1, OptMinMem == RecExpand == Full."""
        for tree, bounds in instances:
            memory = bounds.m2
            schedule, _ = opt_min_mem(tree)
            liu = fif_io_volume(tree, schedule, memory)
            assert rec_expand(tree, memory).io_volume == liu
            assert full_rec_expand(tree, memory).io_volume == liu

    def test_no_io_at_peak(self, instances):
        for tree, bounds in instances:
            schedule, _ = opt_min_mem(tree)
            assert fif_io_volume(tree, schedule, bounds.peak_incore) == 0

    def test_io_positive_below_peak(self, instances):
        for tree, bounds in instances:
            schedule, _ = opt_min_mem(tree)
            assert fif_io_volume(tree, schedule, bounds.m2) > 0

    def test_prediction_matches_simulation_medium(self, instances):
        for tree, bounds in instances:
            for memory in bounds.grid().values():
                res = postorder_min_io(tree, memory)
                assert res.predicted_io == fif_io_volume(tree, res.schedule, memory)


class TestSynthInstanceEndToEnd:
    def test_one_synth_instance_full_pipeline(self):
        tree = synth_instance(400, seed=11)
        bounds = memory_bounds(tree)
        assert bounds.has_io_regime
        memory = bounds.mid
        io = {}
        for name, strategy in ALGORITHMS.items():
            traversal = strategy(tree, memory)
            validate(tree, traversal, memory)
            io[name] = traversal.io_volume
        # The paper's qualitative ordering on SYNTH instances.
        assert io["RecExpand"] <= io["OptMinMem"]
        assert io["FullRecExpand"] <= io["OptMinMem"]
        assert io["PostOrderMinIO"] >= io["RecExpand"]

    def test_reported_io_is_fif_of_reported_schedule(self):
        tree = synth_instance(200, seed=5)
        memory = memory_bounds(tree).mid
        for name, strategy in ALGORITHMS.items():
            traversal = strategy(tree, memory)
            assert traversal.io_volume == fif_io_volume(
                tree, traversal.schedule, memory
            ), name
