"""Tests for the page-granular simulator and its eviction policies.

The centrepiece is the isomorphism check: with page size 1 the Belady
pager must reproduce the node-level FiF simulator's I/O volume exactly,
on any tree and any topological schedule — the two implementations share
no code, so agreement pins both.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.liu import LiuSolver, min_peak_memory
from repro.core.simulator import InfeasibleSchedule, simulate_fif
from repro.core.tree import TaskTree, chain_tree, star_tree
from repro.io.pager import paged_io, page_policy_comparison
from repro.io.policies import POLICIES, make_policy

from .conftest import task_trees, trees_with_memory


def _postorder(tree: TaskTree) -> list[int]:
    return tree.postorder()


class TestBeladyMatchesNodeFiF:
    """Page size 1 + Belady == the paper's FiF model (Theorem 1 analogue)."""

    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    def test_on_postorder_schedules(self, tm):
        tree, memory = tm
        schedule = _postorder(tree)
        node = simulate_fif(tree, schedule, memory)
        paged = paged_io(tree, schedule, memory, page_size=1, policy="belady")
        assert paged.write_units == node.io_volume
        assert paged.read_units == node.io_volume  # reads mirror writes

    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    def test_on_liu_schedules(self, tm):
        tree, memory = tm
        schedule = LiuSolver(tree).schedule()
        node = simulate_fif(tree, schedule, memory)
        paged = paged_io(tree, schedule, memory, page_size=1, policy="belady")
        assert paged.write_units == node.io_volume

    def test_on_paper_figure_2b(self):
        from repro.datasets.instances import figure_2b

        inst = figure_2b()
        assert inst.witness_schedule is not None
        node = simulate_fif(inst.tree, inst.witness_schedule, inst.memory)
        paged = paged_io(
            inst.tree, inst.witness_schedule, inst.memory, page_size=1
        )
        assert paged.write_units == node.io_volume == 3

    @given(tm=trees_with_memory(max_nodes=7, max_weight=8))
    def test_per_node_io_agrees_in_total(self, tm):
        tree, memory = tm
        schedule = _postorder(tree)
        node = simulate_fif(tree, schedule, memory)
        paged = paged_io(tree, schedule, memory, page_size=1)
        assert sum(paged.io_by_node.values()) == node.io_volume


class TestPageRounding:
    """Belady at page size P == node FiF on the page-rounded instance."""

    @given(
        tm=trees_with_memory(max_nodes=7, max_weight=12),
        page=st.integers(2, 5),
    )
    def test_rounding_correspondence(self, tm, page):
        tree, memory = tm
        rounded = tree.with_weights([-(-w // page) * page for w in tree.weights])
        frames_memory = (memory // page) * page
        if frames_memory < max(rounded.wbar):
            return  # rounded instance infeasible at this page size
        schedule = _postorder(tree)
        node = simulate_fif(rounded, schedule, frames_memory)
        paged = paged_io(tree, schedule, memory, page_size=page, policy="belady")
        assert paged.write_units == node.io_volume

    @given(tm=trees_with_memory(max_nodes=7, max_weight=12))
    def test_larger_pages_never_reduce_io(self, tm):
        """Coarser granularity can only round memory down and weights up."""
        tree, memory = tm
        schedule = _postorder(tree)
        io1 = paged_io(tree, schedule, memory, page_size=1).write_units
        for page in (2, 3):
            rounded_wbar = max(
                max(-(-tree.weights[v] // page) * page,
                    sum(-(-tree.weights[c] // page) * page for c in tree.children[v]))
                for v in range(tree.n)
            )
            if (memory // page) * page < rounded_wbar:
                continue
            io_p = paged_io(tree, schedule, memory, page_size=page).write_units
            assert io_p >= io1


class TestPolicies:
    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    def test_belady_is_optimal_among_policies(self, tm):
        tree, memory = tm
        schedule = _postorder(tree)
        results = page_policy_comparison(
            tree, schedule, memory, policies=("belady", "lru", "fifo", "random", "pessimal")
        )
        best = results["belady"].write_pages
        for name, res in results.items():
            assert res.write_pages >= best, name

    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    def test_lru_degenerates_to_fifo(self, tm):
        """Single-touch workload: recency order == arrival order."""
        tree, memory = tm
        schedule = _postorder(tree)
        lru = paged_io(tree, schedule, memory, policy="lru")
        fifo = paged_io(tree, schedule, memory, policy="fifo")
        assert lru.write_pages == fifo.write_pages

    def test_random_policy_is_seed_deterministic(self):
        tree = TaskTree(parents=[-1, 0, 1, 0, 3], weights=[1, 3, 4, 3, 4])
        schedule = [2, 4, 1, 3, 0]  # interleave the chains to force evictions
        a = paged_io(tree, schedule, 6, policy="random", seed=7)
        b = paged_io(tree, schedule, 6, policy="random", seed=7)
        assert a.write_pages > 0
        assert a.write_pages == b.write_pages
        assert a.io_by_node == b.io_by_node

    def test_pessimal_can_be_strictly_worse(self):
        # Two chains under a root: evicting the soon-needed output cascades.
        tree = TaskTree(
            parents=[-1, 0, 1, 0, 3],
            weights=[1, 3, 4, 3, 4],
        )
        schedule = [2, 4, 1, 3, 0]
        memory = min_peak_memory(tree) - 1
        belady = paged_io(tree, schedule, memory, policy="belady")
        pessimal = paged_io(tree, schedule, memory, policy="pessimal")
        assert pessimal.write_pages >= belady.write_pages

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            make_policy("marvellous")

    def test_policies_registry_has_the_documented_names(self):
        assert {"belady", "fif", "lru", "fifo", "random", "pessimal"} <= set(POLICIES)


class TestMechanics:
    def test_no_io_when_memory_ample(self):
        tree = chain_tree([3, 5, 2, 6])
        res = paged_io(tree, tree.postorder(), memory=100)
        assert res.write_pages == res.read_pages == 0
        assert res.peak_frames <= 100

    def test_infeasible_step_raises(self):
        tree = star_tree(1, [5, 5])  # wbar(root) = 10
        with pytest.raises(InfeasibleSchedule):
            paged_io(tree, tree.postorder(), memory=9)

    def test_frames_are_floor_of_memory_over_page(self):
        tree = chain_tree([2, 2])
        res = paged_io(tree, tree.postorder(), memory=7, page_size=3)
        assert res.frames == 2

    def test_trace_events_match_counters(self):
        from repro.datasets.instances import figure_2b

        inst = figure_2b()
        res = paged_io(
            inst.tree, inst.witness_schedule, inst.memory, trace=True
        )
        writes = [e for e in res.events if e.op == "write"]
        reads = [e for e in res.events if e.op == "read"]
        assert len(writes) == res.write_pages
        assert len(reads) == res.read_pages

    def test_every_read_was_written_first(self):
        from repro.datasets.instances import figure_2b

        inst = figure_2b()
        res = paged_io(
            inst.tree, inst.witness_schedule, inst.memory, trace=True
        )
        written: set[int] = set()
        for ev in res.events:
            if ev.op == "write":
                written.add(ev.page)
            else:
                assert ev.page in written

    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    def test_peak_frames_within_bound(self, tm):
        tree, memory = tm
        res = paged_io(tree, _postorder(tree), memory)
        assert res.peak_frames <= res.frames

    def test_custom_policy_instance_accepted(self):
        tree = chain_tree([3, 5, 2, 6])
        policy = make_policy("belady")
        res = paged_io(tree, tree.postorder(), memory=8, policy=policy)
        assert res.policy == "BeladyPolicy"

    def test_performance_metric(self):
        tree = chain_tree([2, 2])
        res = paged_io(tree, tree.postorder(), memory=10)
        assert res.performance(10) == pytest.approx(1.0)
