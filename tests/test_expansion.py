"""Tests for the node-expansion machinery (Section 5 / Figure 3)."""

from __future__ import annotations

import pytest
from hypothesis import given
import hypothesis.strategies as st

from repro.core.expansion import ExpansionTree, Role, expand_tree
from repro.core.tree import TaskTree, chain_tree, star_tree

from .conftest import task_trees


class TestSpliceExpansion:
    def test_splice_structure(self):
        tree = chain_tree([2, 6, 4])  # root(2) <- 1(6) <- leaf(4)
        xt = ExpansionTree(tree)
        dirty = xt.expand(1, 2)
        # chain becomes: leaf(4) -> 1(6) -> residual(4) -> readback(6) -> root
        assert xt.n == 5
        residual, readback = 3, 4
        assert dirty == readback
        assert xt.weights[residual] == 4
        assert xt.weights[readback] == 6
        assert xt.parents[1] == residual
        assert xt.parents[residual] == readback
        assert xt.parents[readback] == 0
        assert xt.children[0] == [readback]
        assert xt.role[residual] == Role.RESIDUAL
        assert xt.role[readback] == Role.READBACK
        assert xt.origin[residual] == xt.origin[readback] == 1
        assert xt.expanded_io == 2
        assert xt.num_expansions == 1

    def test_expand_weights_mimic_io(self):
        """The three weights are w, w - tau, w (Figure 3)."""
        tree = chain_tree([1, 5])
        xt = ExpansionTree(tree)
        xt.expand(1, 3)
        # original keeps 5; residual 2; readback 5
        assert xt.weights[1] == 5
        assert sorted(xt.weights[2:]) == [2, 5]

    def test_expand_root_rehangs_root(self):
        tree = TaskTree([-1], [4])
        xt = ExpansionTree(tree)
        xt.expand(0, 1)
        assert xt.root != 0
        assert xt.parents[xt.root] == -1
        assert xt.role[xt.root] == Role.READBACK

    def test_full_eviction_allows_zero_residual(self):
        tree = chain_tree([1, 5])
        xt = ExpansionTree(tree)
        xt.expand(1, 5)
        assert 0 in xt.weights

    def test_rejects_overlarge_amount(self):
        xt = ExpansionTree(chain_tree([1, 5]))
        with pytest.raises(ValueError, match="only 5 resident"):
            xt.expand(1, 6)

    def test_rejects_nonpositive_amount(self):
        xt = ExpansionTree(chain_tree([1, 5]))
        with pytest.raises(ValueError, match="positive"):
            xt.expand(1, 0)

    def test_sibling_order_preserved_on_splice(self):
        tree = star_tree(1, [2, 3, 4])
        xt = ExpansionTree(tree)
        xt.expand(2, 1)  # middle child
        kids = xt.children[0]
        assert kids[0] == 1 and kids[2] == 3
        assert xt.origin[kids[1]] == 2  # the readback replaced node 2 in place


class TestWeightReduction:
    def test_second_expansion_reduces_residual(self):
        """Figure 6's 4,2,4 -> 4,1,4 behaviour."""
        tree = chain_tree([1, 4])
        xt = ExpansionTree(tree)
        xt.expand(1, 2)
        residual = next(v for v in range(xt.n) if xt.role[v] == Role.RESIDUAL)
        assert xt.weights[residual] == 2
        dirty = xt.expand(residual, 1)
        assert dirty == residual
        assert xt.weights[residual] == 1
        assert xt.n == 4  # no new nodes
        assert xt.expanded_io == 3

    def test_readback_expansion_splices_again(self):
        tree = chain_tree([1, 4])
        xt = ExpansionTree(tree)
        xt.expand(1, 2)
        readback = next(v for v in range(xt.n) if xt.role[v] == Role.READBACK)
        xt.expand(readback, 1)
        assert xt.n == 6
        # still exactly one ORIGINAL node per original task
        originals = [v for v in range(xt.n) if xt.role[v] == Role.ORIGINAL]
        assert sorted(xt.origin[v] for v in originals) == [0, 1]


class TestBookkeeping:
    def test_as_task_tree_valid(self):
        xt = ExpansionTree(chain_tree([2, 6, 4]))
        xt.expand(1, 3)
        frozen = xt.as_task_tree()
        assert frozen.n == 5
        assert frozen.total_weight() == 2 + 6 + 4 + 3 + 6

    def test_restrict_schedule_drops_helpers(self):
        tree = chain_tree([2, 6, 4])
        xt = ExpansionTree(tree)
        xt.expand(1, 2)
        # full expanded order: leaf(2), node1, residual, readback, root
        full = [2, 1, 3, 4, 0]
        assert xt.restrict_schedule(full) == [2, 1, 0]

    def test_io_per_original_node(self):
        tree = chain_tree([2, 6, 4])
        xt = ExpansionTree(tree)
        xt.expand(1, 2)
        assert xt.io_per_original_node() == {1: 2}
        residual = next(v for v in range(xt.n) if xt.role[v] == Role.RESIDUAL)
        xt.expand(residual, 1)
        assert xt.io_per_original_node() == {1: 3}

    def test_repr(self):
        xt = ExpansionTree(chain_tree([1, 2]))
        assert "base_n=2" in repr(xt)


class TestExpandTreeOneShot:
    def test_expands_all_positive_entries(self):
        tree = star_tree(1, [3, 4])
        expanded, xt = expand_tree(tree, [0, 1, 2])
        assert expanded.n == 3 + 2 * 2
        assert xt.expanded_io == 3

    def test_rejects_misaligned_io(self):
        with pytest.raises(ValueError, match="aligned"):
            expand_tree(chain_tree([1, 2]), [0])

    def test_rejects_out_of_range_io(self):
        with pytest.raises(ValueError, match="out of range"):
            expand_tree(chain_tree([1, 2]), [0, 3])

    @given(task_trees(max_nodes=8), st.data())
    def test_expanded_tree_weight_accounting(self, tree, data):
        io = [
            data.draw(st.integers(0, tree.weights[v]), label=f"io[{v}]")
            for v in range(tree.n)
        ]
        expanded, xt = expand_tree(tree, io)
        # Each expanded node adds (w - tau) + w extra weight.
        extra = sum(2 * tree.weights[v] - io[v] for v in range(tree.n) if io[v])
        assert expanded.total_weight() == tree.total_weight() + extra
        assert xt.expanded_io == sum(io)
