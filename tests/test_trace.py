"""Tests for execution traces (repro.core.trace).

The load-bearing property: for any valid traversal, exporting the event
stream and replaying it independently reproduces the traversal's I/O
volume and respects the memory bound — the exporter and the replayer
share no accounting code with each other or with `validate`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.trace import (
    ReplayResult,
    TraceError,
    TraceEvent,
    from_jsonl,
    replay,
    to_jsonl,
    traversal_trace,
)
from repro.core.tree import chain_tree
from repro.experiments.registry import get_algorithm

from .conftest import trees_with_memory


def _traversal(tree, memory):
    return get_algorithm("RecExpand")(tree, memory)


class TestRoundTrip:
    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    @settings(max_examples=40)
    def test_jsonl_round_trip_identity(self, tm):
        tree, memory = tm
        events = traversal_trace(tree, _traversal(tree, memory))
        assert from_jsonl(to_jsonl(events)) == events

    def test_blank_lines_skipped(self):
        text = '{"k":"execute","n":0,"a":3}\n\n  \n'
        assert len(from_jsonl(text)) == 1

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            '{"k":"levitate","n":0,"a":1}',
            '{"n":0,"a":1}',
            '{"k":"read","n":"x","a":1}',
        ],
    )
    def test_bad_lines_rejected_with_location(self, line):
        with pytest.raises(ValueError, match="bad trace line 1"):
            from_jsonl(line)


class TestReplayAgreement:
    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    @settings(max_examples=50)
    def test_replay_reproduces_io_volume(self, tm):
        tree, memory = tm
        traversal = _traversal(tree, memory)
        events = traversal_trace(tree, traversal)
        result = replay(tree, events, memory)
        assert isinstance(result, ReplayResult)
        assert result.io_volume == traversal.io_volume
        assert result.schedule == traversal.schedule

    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    @settings(max_examples=30)
    def test_replay_peak_within_bound(self, tm):
        tree, memory = tm
        events = traversal_trace(tree, _traversal(tree, memory))
        assert replay(tree, events, memory).peak_memory <= memory

    def test_replay_without_bound_reports_peak(self):
        tree = chain_tree([3, 5, 2, 6])
        traversal = _traversal(tree, 100)
        result = replay(tree, traversal_trace(tree, traversal))
        assert result.peak_memory >= max(tree.wbar)


class TestReplayCatchesViolations:
    def _tree(self):
        return chain_tree([3, 5, 2, 6])  # node 3 is the leaf, 0 the root

    def test_missing_execution_detected(self):
        tree = self._tree()
        with pytest.raises(TraceError, match="never executed"):
            replay(tree, [TraceEvent("execute", 3, 6)])

    def test_double_execution_detected(self):
        tree = self._tree()
        events = [TraceEvent("execute", 3, 6), TraceEvent("execute", 3, 6)]
        with pytest.raises(TraceError, match="twice"):
            replay(tree, events)

    def test_child_before_parent_enforced(self):
        tree = self._tree()
        with pytest.raises(TraceError, match="not executed"):
            replay(tree, [TraceEvent("execute", 2, 6)])

    def test_write_of_nonexistent_output(self):
        tree = self._tree()
        with pytest.raises(TraceError, match="does not exist"):
            replay(tree, [TraceEvent("write", 3, 1)])

    def test_overwrite_beyond_resident(self):
        tree = self._tree()
        events = [TraceEvent("execute", 3, 6), TraceEvent("write", 3, 7)]
        with pytest.raises(TraceError, match="only 6 resident"):
            replay(tree, events)

    def test_read_more_than_written(self):
        tree = self._tree()
        events = [
            TraceEvent("execute", 3, 6),
            TraceEvent("write", 3, 2),
            TraceEvent("read", 3, 3),
        ]
        with pytest.raises(TraceError, match="only 2 on disk"):
            replay(tree, events)

    def test_unrestored_input_detected(self):
        tree = self._tree()
        events = [
            TraceEvent("execute", 3, 6),
            TraceEvent("write", 3, 2),
            TraceEvent("execute", 2, 6),  # consumes node 3 with 2 still on disk
        ]
        with pytest.raises(TraceError, match="on disk"):
            replay(tree, events)

    def test_memory_bound_enforced(self):
        # Two chains under one root: peak (7) exceeds LB (6), so a no-IO
        # trace planned for ample memory must violate M = LB on replay.
        from repro.core.tree import TaskTree

        tree = TaskTree([-1, 0, 1, 0, 3], [1, 3, 4, 3, 4])
        traversal = _traversal(tree, 100)  # no I/O planned
        events = traversal_trace(tree, traversal)
        with pytest.raises(TraceError, match="> M="):
            replay(tree, events, memory=max(tree.wbar))

    def test_event_validation(self):
        with pytest.raises(ValueError, match="kind"):
            TraceEvent("compute", 0, 1)
        with pytest.raises(ValueError, match="negative"):
            TraceEvent("read", 0, -1)
