"""Randomized cross-validation of the two kernel engines.

A seeded fuzzer draws ~200 trees across every family and size band the
repository generates — uniform binary and plane trees, preferential
attachment, nested-dissection-shaped, chains, stars, caterpillars,
uniform random attachment with zero weights — and asserts that the flat
array kernels and the object-engine implementations are **byte
identical** on all of them:

* ``postorder_min_mem`` / ``postorder_min_io``: schedule, per-subtree
  storage ``S_i``, peak, predicted ``V_root``;
* ``opt_min_mem`` (Liu's segment solver): schedule and peak;
* the FiF simulator: the full I/O function (which node pays how much),
  total volume, and peak, on every schedule above, at several memory
  bounds across the I/O regime;
* the paper's invariant: ``postorder_min_io``'s predicted ``V_root``
  equals the FiF simulation of its schedule — on *both* engines.

Exact equality (not "close") is the point: the array engine replaces the
object engine behind the public APIs, so any divergence is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.liu import LiuSolver, min_peak_memory, opt_min_mem
from repro.algorithms.postorder import postorder_min_io, postorder_min_mem
from repro.core.arraytree import ArrayTree
from repro.core.simulator import simulate_fif
from repro.core.tree import TaskTree
from repro.datasets.synth import (
    deep_random_tree,
    huge_chain,
    huge_star,
    nested_dissection_shaped_tree,
    random_attachment_tree,
    random_binary_tree,
    random_plane_tree,
    random_weights,
)

BASE_SEED = 20170208  # match the SYNTH dataset's anchor seed


def _uniform_attachment(n, rng, weight_range=(0, 9)):
    """node i -> uniform earlier parent; includes zero weights."""
    parents = [-1] + [int(rng.integers(0, i)) for i in range(1, n)]
    low, high = weight_range
    weights = [int(w) for w in rng.integers(low, high + 1, size=n)]
    return TaskTree(parents, weights)


def _make_tree(family: str, n: int, rng: np.random.Generator) -> TaskTree:
    if family == "binary":
        t = random_binary_tree(n, rng)
        return t.with_weights(random_weights(n, rng))
    if family == "plane":
        t = random_plane_tree(n, rng)
        return t.with_weights(random_weights(n, rng))
    if family == "uniform0":  # zero weights allowed
        return _uniform_attachment(n, rng)
    if family == "attachment":
        return random_attachment_tree(n, rng).to_task_tree()
    if family == "nd":
        return nested_dissection_shaped_tree(n, rng).to_task_tree()
    if family == "chain":
        return huge_chain(n, rng).to_task_tree()
    if family == "star":
        return huge_star(n, rng).to_task_tree()
    if family == "caterpillar":
        return deep_random_tree(n, max(1, n // 2), rng).to_task_tree()
    raise AssertionError(family)


FAMILIES = (
    "binary",
    "plane",
    "uniform0",
    "attachment",
    "nd",
    "chain",
    "star",
    "caterpillar",
)

#: (number of instances, node-count band) per family — 8 * 25 = 200
#: fuzzed trees, a handful of them above the auto-dispatch threshold.
SIZE_BANDS = ((18, (1, 90)), (5, (91, 400)), (2, (401, 1400)))


def _memory_grid(tree: TaskTree) -> list[int]:
    lb = tree.min_feasible_memory()
    peak = min_peak_memory(tree)
    mid = (lb + peak) // 2
    return sorted({max(1, lb), max(1, mid), max(1, peak - 1), peak + 3})


def _assert_simulations_match(tree, at, schedule, memory):
    r_obj = simulate_fif(tree, schedule, memory, engine="object")
    r_arr = simulate_fif(at, schedule, memory, engine="array")
    assert dict(r_obj.io) == dict(r_arr.io)
    assert r_obj.io_volume == r_arr.io_volume
    assert r_obj.peak_memory == r_arr.peak_memory
    return r_obj.io_volume


def _crossval_one(tree: TaskTree) -> None:
    at = ArrayTree.from_task_tree(tree)

    mm_obj = postorder_min_mem(tree, engine="object")
    mm_arr = postorder_min_mem(at, engine="array")
    assert mm_obj == mm_arr

    liu_obj = (LiuSolver(tree).schedule(), LiuSolver(tree).peak())
    liu_arr = opt_min_mem(at, engine="array")
    assert liu_obj[0] == liu_arr[0]
    assert liu_obj[1] == liu_arr[1]

    for memory in _memory_grid(tree):
        if memory < tree.min_feasible_memory():
            continue
        io_obj = postorder_min_io(tree, memory, engine="object")
        io_arr = postorder_min_io(at, memory, engine="array")
        assert io_obj == io_arr

        # FiF equality on every schedule the engines produced, plus the
        # headline invariant V_root == simulated volume on both engines.
        simulated = _assert_simulations_match(tree, at, io_obj.schedule, memory)
        assert io_obj.predicted_io == simulated
        assert io_arr.predicted_io == simulated
        _assert_simulations_match(tree, at, mm_obj.schedule, memory)
        _assert_simulations_match(tree, at, liu_obj[0], memory)


@pytest.mark.parametrize("family", FAMILIES)
def test_engines_byte_identical(family):
    instance = 0
    family_index = FAMILIES.index(family)
    for band_index, (band, (lo, hi)) in enumerate(SIZE_BANDS):
        for k in range(band):
            # Stable arithmetic seed (string hashing is randomized).
            seed = BASE_SEED + family_index * 10_000 + band_index * 100 + k
            rng = np.random.default_rng(seed)
            n = int(rng.integers(lo, hi + 1))
            tree = _make_tree(family, n, rng)
            _crossval_one(tree)
            instance += 1
    assert instance == sum(band for band, _ in SIZE_BANDS)


def test_unbounded_memory_simulation_matches():
    rng = np.random.default_rng(7)
    tree = _make_tree("binary", 300, rng)
    at = ArrayTree.from_task_tree(tree)
    schedule = postorder_min_mem(tree, engine="object").schedule
    r_obj = simulate_fif(tree, schedule, None, engine="object")
    r_arr = simulate_fif(at, schedule, None, engine="array")
    assert r_obj.peak_memory == r_arr.peak_memory
    assert r_obj.io_volume == r_arr.io_volume == 0


def test_infeasible_memory_raises_identically():
    from repro.core.simulator import InfeasibleSchedule

    rng = np.random.default_rng(11)
    tree = _make_tree("plane", 60, rng)
    at = ArrayTree.from_task_tree(tree)
    schedule = postorder_min_mem(tree, engine="object").schedule
    too_small = tree.min_feasible_memory() - 1
    if too_small < 1:
        pytest.skip("tree with zero LB")
    with pytest.raises(InfeasibleSchedule):
        simulate_fif(tree, schedule, too_small, engine="object")
    with pytest.raises(InfeasibleSchedule):
        simulate_fif(at, schedule, too_small, engine="array")


def test_auto_dispatch_equals_forced_engines():
    """The default (auto) path returns the same objects as both forced paths."""
    rng = np.random.default_rng(23)
    for n in (40, 700):
        tree = _make_tree("binary", n, rng)
        memory = max(1, (tree.min_feasible_memory() + min_peak_memory(tree)) // 2)
        auto = postorder_min_io(tree, memory)
        assert auto == postorder_min_io(tree, memory, engine="object")
        assert auto == postorder_min_io(tree, memory, engine="array")
