"""Failure injection: corrupted inputs must be *rejected*, not absorbed.

A production scheduler is judged by what it refuses: these tests mutate
valid artefacts (schedules, I/O functions, trees, priorities) in every
structured way and assert the checking layers catch each corruption.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.core.simulator import InfeasibleSchedule, fif_traversal, simulate_fif
from repro.core.traversal import InvalidTraversal, Traversal, validate
from repro.core.tree import TaskTree, TreeError
from repro.datasets.instances import figure_2b

from .conftest import trees_with_memory


class TestCorruptedSchedules:
    @given(trees_with_memory(max_nodes=8), st.data())
    @settings(max_examples=60)
    def test_swapping_parent_child_rejected(self, tree_memory, data):
        tree, memory = tree_memory
        if tree.n < 2:
            return
        traversal = fif_traversal(
            tree, list(reversed(tree.topological_order())), memory
        )
        schedule = list(traversal.schedule)
        # Swap a node with its parent: always an order violation.
        v = data.draw(
            st.sampled_from([u for u in range(tree.n) if tree.parents[u] != -1])
        )
        p = tree.parents[v]
        i, j = schedule.index(v), schedule.index(p)
        schedule[i], schedule[j] = schedule[j], schedule[i]
        with pytest.raises(InvalidTraversal):
            validate(tree, Traversal(tuple(schedule), traversal.io), memory)

    @given(trees_with_memory(max_nodes=8))
    @settings(max_examples=40)
    def test_duplicating_a_step_rejected(self, tree_memory):
        tree, memory = tree_memory
        if tree.n < 2:
            return
        traversal = fif_traversal(
            tree, list(reversed(tree.topological_order())), memory
        )
        schedule = list(traversal.schedule)
        schedule[-1] = schedule[0]
        with pytest.raises(InvalidTraversal):
            validate(tree, Traversal(tuple(schedule), traversal.io), memory)

    def test_truncated_schedule_rejected(self):
        inst = figure_2b()
        traversal = fif_traversal(
            inst.tree, list(reversed(inst.tree.topological_order())), inst.memory
        )
        with pytest.raises(InvalidTraversal):
            validate(
                inst.tree,
                Traversal(traversal.schedule[:-1], traversal.io),
                inst.memory,
            )


class TestCorruptedIOFunctions:
    @given(trees_with_memory(max_nodes=8), st.data())
    @settings(max_examples=60)
    def test_reducing_necessary_io_rejected(self, tree_memory, data):
        """Removing a unit from any tau that FiF deemed necessary at a
        *binding* memory bound must break validity."""
        tree, memory = tree_memory
        schedule = list(reversed(tree.topological_order()))
        result = simulate_fif(tree, schedule, memory)
        binding = [v for v, amount in result.io.items() if amount > 0]
        if not binding:
            return
        v = data.draw(st.sampled_from(binding))
        io = list(result.io_list(tree.n))
        io[v] -= 1
        with pytest.raises(InvalidTraversal):
            validate(tree, Traversal(tuple(schedule), tuple(io)), memory)

    @given(trees_with_memory(max_nodes=8), st.data())
    @settings(max_examples=40)
    def test_inflating_io_beyond_weight_rejected(self, tree_memory, data):
        tree, memory = tree_memory
        schedule = tuple(reversed(tree.topological_order()))
        result = simulate_fif(tree, schedule, memory)
        io = list(result.io_list(tree.n))
        v = data.draw(st.integers(0, tree.n - 1))
        io[v] = tree.weights[v] + 1
        with pytest.raises(InvalidTraversal):
            validate(tree, Traversal(schedule, tuple(io)), memory)


class TestCorruptedTrees:
    def test_self_parent_rejected(self):
        with pytest.raises(TreeError):
            TaskTree([0], [1])

    def test_forest_rejected(self):
        with pytest.raises(TreeError):
            TaskTree([-1, -1, 0], [1, 1, 1])

    def test_parent_cycle_rejected(self):
        with pytest.raises(TreeError):
            TaskTree([-1, 2, 3, 1], [1, 1, 1, 1])

    def test_float_weights_rejected(self):
        with pytest.raises(TreeError):
            TaskTree([-1, 0], [1, 2.5])


class TestSimulatorRefusals:
    def test_overlarge_wbar_always_raises(self):
        tree = TaskTree([-1, 0, 0], [1, 4, 4])
        with pytest.raises(InfeasibleSchedule):
            simulate_fif(tree, [1, 2, 0], 7)  # root needs 8

    def test_partial_schedules_allowed_but_consistent(self):
        # Subtree schedules are a feature, not a corruption: the missing
        # parent is simply treated as "never consumed".
        tree = TaskTree([-1, 0, 1], [1, 2, 3])
        res = simulate_fif(tree, [2, 1], 5)
        assert res.io_volume == 0


class TestParallelRefusals:
    def test_priority_must_cover_all_nodes(self):
        from repro.parallel import simulate_parallel

        tree = TaskTree([-1, 0], [1, 1])
        with pytest.raises(ValueError):
            simulate_parallel(tree, 10, 2, [0, 1, 2])

    def test_memory_below_wbar_refused_before_simulation(self):
        from repro.parallel import simulate_parallel

        tree = TaskTree([-1, 0, 0], [1, 4, 4])
        with pytest.raises(ValueError, match="feasible"):
            simulate_parallel(tree, 7, 2, [0, 1, 2])
