"""Fixture: an error code outside the ``api.errors`` taxonomy."""


def reject(reason):
    from repro.api.errors import ProtocolError

    raise ProtocolError("bad_vibes", reason)
