"""Fixture: the clean twin — counted, logged, or narrow handlers."""


def read_config(path, parser, counter):
    try:
        return parser(path)
    except Exception:
        counter.inc()
        return None


def last_value(values):
    try:
        return values[-1]
    except IndexError:  # narrow handlers are a legitimate idiom
        return None
