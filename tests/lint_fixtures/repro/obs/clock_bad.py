"""Fixture: wall-clock deltas in an obs-scoped module.

One direct violation (``time.time()`` inside arithmetic) and one
through a local variable (assigned, then used as an operand later).
"""

import time


def scrape_age(started):
    return time.time() - started


def elapsed_ms(work):
    t0 = time.time()
    work()
    return 1000.0 * t0
