"""Fixture: the clean twin — monotonic durations, wall clock as timestamp."""

import time


def elapsed(work):
    t0 = time.monotonic()
    work()
    return time.monotonic() - t0


def log_record(event):
    # a plain timestamp value, no arithmetic: stays legal
    return {"event": event, "ts": time.time()}
