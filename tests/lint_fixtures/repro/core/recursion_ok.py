"""Fixture: the clean twin of ``recursion_bad`` — explicit stacks only."""


def subtree_weight(node, children, weights):
    total = 0
    stack = [node]
    while stack:
        current = stack.pop()
        total += weights[current]
        stack.extend(children[current])
    return total


def parity(n):
    even = True
    while n > 0:
        even = not even
        n -= 1
    return even
