"""Fixture: direct and mutual recursion in a kernel-scoped module.

The path mirrors the package layout (``repro/core/``) so the
``no-recursion`` rule scopes this file exactly like a real kernel.
"""


def subtree_weight(node, children, weights):
    total = weights[node]
    for child in children[node]:
        total += subtree_weight(child, children, weights)
    return total


def _even(n):
    return True if n == 0 else _odd(n - 1)


def _odd(n):
    return False if n == 0 else _even(n - 1)
