"""Fixture: blocking calls inside ``async def`` in a service-scoped module."""

import time


async def handle(cache, key):
    time.sleep(0.05)
    return cache.get(key)


async def read_body(path):
    with open(path) as fh:
        return fh.read()
