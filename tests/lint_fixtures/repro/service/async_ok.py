"""Fixture: the clean twin — asyncio primitives and executor hand-offs."""

import asyncio


async def handle(loop, cache, key):
    await asyncio.sleep(0.05)
    # the bound method is handed over, not called: legal
    return await loop.run_in_executor(None, cache.get, key)


def sync_helper(cache, key):
    # nearest enclosing function is sync (executor-bound helper): legal
    return cache.get(key)
