"""Fixture: a pragma without justification — suppresses nothing, and is
itself reported under ``lint-pragma``."""


def flaky(probe):
    try:
        return probe()
    except Exception:  # repro: allow(no-swallowed-exceptions)
        return None
