"""Fixture: a request dataclass with an unkeyed field and an excluded typo."""

from dataclasses import dataclass


class CanonicalRequest:
    """Stand-in base; the rule matches on the base *name*."""


@dataclass(frozen=True)
class ShardRequest(CanonicalRequest):
    tree_id: str
    memory: int
    retries: int  # neither keyed nor excluded: the violation

    key_excluded = frozenset({"retriez"})  # typo: names no declared field

    def key_params(self):
        return {"tree_id": self.tree_id, "memory": self.memory}
