"""Fixture: broad handlers that hide failures (the Gauge bug class)."""


def read_config(path, parser):
    try:
        return parser(path)
    except Exception:
        pass
    return None


def last_value(values):
    try:
        return values[-1]
    except:  # noqa: E722 - the bare form is the point of the fixture
        return None
