"""Fixture: the clean twin — a code the taxonomy knows."""


def reject(reason):
    from repro.api.errors import ProtocolError

    raise ProtocolError("bad_field", reason)
