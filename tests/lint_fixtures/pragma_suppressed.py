"""Fixture: a violation suppressed by a justified pragma (0 findings)."""


def flaky(probe):
    try:
        return probe()
    # repro: allow(no-swallowed-exceptions) -- fixture: justified suppression
    except Exception:
        return None
