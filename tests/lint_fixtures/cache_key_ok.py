"""Fixture: the clean twin — every field keyed (also via a helper) or excluded."""

from dataclasses import dataclass


class CanonicalRequest:
    """Stand-in base; the rule matches on the base *name*."""


@dataclass(frozen=True)
class ShardRequest(CanonicalRequest):
    tree_id: str
    memory: int
    retries: int

    #: delivery policy, deliberately outside the content address
    key_excluded = frozenset({"retries"})

    def columns(self):
        # ``tree_id`` is reached through this helper: the rule follows
        # method indirection when computing the keyed set
        return {"tree_id": self.tree_id}

    def key_params(self):
        params = self.columns()
        params["memory"] = self.memory
        return params
