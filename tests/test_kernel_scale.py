"""Million-node regression tests for the flat kernel layer.

The paper's experimental subjects — assembly trees of sparse matrices —
reach 10^5–10^6 nodes and can be chain-deep.  These tests pin the two
failure modes the kernel layer exists to remove:

* ``RecursionError`` on deep trees (the solvers must be iterative; the
  interpreter's recursion limit is asserted untouched);
* super-linear blow-ups (each end-to-end solve must land well inside a
  generous wall-clock budget even on slow CI machines).
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.algorithms.liu import min_peak_memory, opt_min_mem
from repro.algorithms.postorder import postorder_min_io, postorder_min_mem
from repro.analysis.tree_stats import tree_stats
from repro.core.simulator import simulate_fif
from repro.datasets.synth import huge_instance

MILLION = 1_000_000

#: seconds per end-to-end scenario; actual runtimes are a small fraction
#: of this — the budget exists to catch accidental O(n^2) regressions,
#: not to benchmark.
WALL_BUDGET = 120.0


@pytest.fixture(autouse=True)
def _recursion_limit_untouched():
    """No test (and no kernel under it) may touch the recursion limit."""
    limit = sys.getrecursionlimit()
    yield
    assert sys.getrecursionlimit() == limit


def test_million_node_chain_end_to_end():
    t0 = time.perf_counter()
    at = huge_instance("chain", MILLION, seed=1)
    assert at.n == MILLION
    assert at.depth() == MILLION - 1

    peak = min_peak_memory(at)
    memory = max(at.min_feasible_memory(), peak - 1)
    result = postorder_min_io(at, memory)
    assert len(result.schedule) == MILLION
    sim = simulate_fif(at, result.schedule, memory)
    assert result.predicted_io == sim.io_volume

    schedule, liu_peak = opt_min_mem(at)
    assert len(schedule) == MILLION
    assert liu_peak == peak
    assert time.perf_counter() - t0 < WALL_BUDGET


def test_deep_random_tree_end_to_end():
    depth = 500_000
    t0 = time.perf_counter()
    at = huge_instance("caterpillar", MILLION, seed=2, depth=depth)
    assert at.n == MILLION
    assert at.depth() == depth

    memory = max(at.min_feasible_memory(), min_peak_memory(at) - 1)
    result = postorder_min_io(at, memory)
    sim = simulate_fif(at, result.schedule, memory)
    assert result.predicted_io == sim.io_volume
    assert time.perf_counter() - t0 < WALL_BUDGET


def test_nested_dissection_scale_with_real_io():
    """A 10^6-node multifrontal-shaped tree with an actual I/O regime."""
    t0 = time.perf_counter()
    at = huge_instance("nd", MILLION, seed=3)
    stats = tree_stats(at)
    assert stats.n == MILLION
    assert stats.io_regime_width > 0

    memory = (stats.lb + stats.peak_incore - 1) // 2
    result = postorder_min_io(at, memory)
    sim = simulate_fif(at, result.schedule, memory)
    assert result.predicted_io == sim.io_volume
    assert sim.io_volume > 0  # the bound actually forces evictions
    assert postorder_min_mem(at).peak_memory == stats.peak_incore
    assert time.perf_counter() - t0 < WALL_BUDGET
