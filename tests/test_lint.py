"""The AST invariant checker: rules, pragmas, baseline, CLI contract.

The fixture modules under ``tests/lint_fixtures/`` are deliberately
broken (or deliberately clean twins); the directory is excluded from
directory walks and only ever linted as explicit file arguments.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.lint import (
    EXIT_FINDINGS,
    RULE_IDS,
    Finding,
    LintError,
    default_rules,
    fingerprint,
    load_baseline,
    run_lint,
)
from repro.analysis.lint.cli import main as lint_main
from repro.analysis.lint.engine import extract_pragmas, module_name_for
from repro.api.errors import EXIT_BAD_INPUT, EXIT_OK
from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint_fixtures")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


# ----------------------------------------------------------------------
# rules: every violation fixture fires its rule; every clean twin is quiet
# ----------------------------------------------------------------------
RULE_FIXTURES = [
    ("no-recursion", fixture("repro", "core", "recursion_bad.py"), 3),
    ("monotonic-clock", fixture("repro", "obs", "clock_bad.py"), 2),
    ("no-blocking-in-async", fixture("repro", "service", "async_bad.py"), 3),
    ("no-swallowed-exceptions", fixture("swallow_bad.py"), 2),
    ("cache-key-discipline", fixture("cache_key_bad.py"), 2),
    ("error-taxonomy", fixture("taxonomy_bad.py"), 1),
]

CLEAN_TWINS = [
    fixture("repro", "core", "recursion_ok.py"),
    fixture("repro", "obs", "clock_ok.py"),
    fixture("repro", "service", "async_ok.py"),
    fixture("swallow_ok.py"),
    fixture("cache_key_ok.py"),
    fixture("taxonomy_ok.py"),
]


class TestRules:
    @pytest.mark.parametrize(
        "rule_id,path,count", RULE_FIXTURES, ids=[r for r, _, _ in RULE_FIXTURES]
    )
    def test_violation_fixture_fires(self, rule_id, path, count):
        report = run_lint([path])
        assert [f.rule for f in report.findings] == [rule_id] * count

    @pytest.mark.parametrize(
        "path", CLEAN_TWINS, ids=[os.path.basename(p) for p in CLEAN_TWINS]
    )
    def test_clean_twin_is_quiet(self, path):
        report = run_lint([path])
        assert report.findings == []

    def test_mutual_recursion_names_the_cycle(self):
        report = run_lint([fixture("repro", "core", "recursion_bad.py")])
        mutual = [f for f in report.findings if "_even" in f.message]
        assert mutual and "mutual-recursion cycle" in mutual[0].message

    def test_rule_filter_runs_only_named_rules(self):
        report = run_lint(
            [fixture("swallow_bad.py"), fixture("taxonomy_bad.py")],
            rules=default_rules(["error-taxonomy"]),
        )
        assert {f.rule for f in report.findings} == {"error-taxonomy"}

    def test_unknown_rule_id_is_lint_error(self):
        with pytest.raises(LintError):
            default_rules(["no-such-rule"])


# ----------------------------------------------------------------------
# scoping: the same source outside a scoped package is not a finding
# ----------------------------------------------------------------------
class TestScoping:
    def test_module_name_anchors_on_mirrored_repro(self):
        assert (
            module_name_for("tests/lint_fixtures/repro/core/x.py")
            == "repro.core.x"
        )
        assert module_name_for("src/repro/api/errors.py") == "repro.api.errors"
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"

    def test_recursion_is_legal_outside_kernel_scope(self, tmp_path):
        source = (fixture("repro", "core", "recursion_bad.py"),)
        body = open(source[0], encoding="utf-8").read()
        stray = tmp_path / "helpers.py"  # module "helpers": out of scope
        stray.write_text(body)
        assert run_lint([str(stray)]).findings == []

    def test_directory_walk_skips_lint_fixtures(self):
        report = run_lint([os.path.join(REPO_ROOT, "tests")])
        assert not any("lint_fixtures" in f.path for f in report.findings)


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def test_justified_pragma_suppresses(self):
        report = run_lint([fixture("pragma_suppressed.py")])
        assert report.findings == []
        assert report.suppressed == 1

    def test_unjustified_pragma_does_not_suppress(self):
        report = run_lint([fixture("pragma_unjustified.py")])
        assert [f.rule for f in report.findings] == [
            "lint-pragma",
            "no-swallowed-exceptions",
        ]

    def test_pragma_naming_unknown_rule_is_reported(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("x = 1  # repro: allow(no-such-rule) -- why\n")
        report = run_lint([str(path)])
        assert [f.rule for f in report.findings] == ["lint-pragma"]
        assert "unknown rule" in report.findings[0].message

    def test_malformed_pragma_is_reported(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("x = 1  # repro: allowed(no-recursion)\n")
        report = run_lint([str(path)])
        assert [f.rule for f in report.findings] == ["lint-pragma"]
        assert "malformed" in report.findings[0].message

    def test_pragma_text_inside_string_is_ignored(self):
        pragmas, malformed = extract_pragmas(
            's = "# repro: allow(no-recursion) -- not a comment"\n'
        )
        assert pragmas == [] and malformed == []


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class TestBaseline:
    def test_roundtrip_via_cli(self, tmp_path, capsys):
        bad = fixture("swallow_bad.py")
        baseline = tmp_path / "baseline.json"
        assert (
            lint_main(["--write-baseline", "--baseline", str(baseline), bad])
            == EXIT_OK
        )
        capsys.readouterr()
        fps = load_baseline(str(baseline))
        assert len(fps) == 2
        # grandfathered: same findings now exit clean and count as baselined
        assert lint_main(["--baseline", str(baseline), bad]) == EXIT_OK
        assert "(0 suppressed, 2 baselined)" in capsys.readouterr().out

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        body = "def f(x):\n    try:\n        return x()\n    except Exception:\n        return None\n"
        path = tmp_path / "m.py"
        path.write_text(body)
        before = run_lint([str(path)]).all_fingerprints
        path.write_text("# a comment\n# another\n\n" + body)
        after = run_lint([str(path)]).all_fingerprints
        assert before and before == after

    def test_fingerprint_is_location_independent_identity(self):
        finding = Finding(
            rule="r", path="p.py", line=3, col=0, message="m",
            symbol="f", module="mod",
        )
        shifted = Finding(
            rule="r", path="p.py", line=99, col=0, message="m",
            symbol="f", module="mod",
        )
        assert fingerprint(finding, "return x", 0) == fingerprint(shifted, "return x", 0)
        assert fingerprint(finding, "return x", 0) != fingerprint(finding, "return x", 1)

    def test_unreadable_baseline_is_bad_usage(self, tmp_path):
        bogus = tmp_path / "baseline.json"
        bogus.write_text('{"not": "a baseline"}')
        code = lint_main(["--baseline", str(bogus), fixture("swallow_ok.py")])
        assert code == EXIT_BAD_INPUT

    def test_missing_explicit_baseline_is_bad_usage(self, tmp_path):
        code = lint_main(
            ["--baseline", str(tmp_path / "absent.json"), fixture("swallow_ok.py")]
        )
        assert code == EXIT_BAD_INPUT


# ----------------------------------------------------------------------
# CLI: exit codes, JSON golden, subcommand wiring
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_contract_clean(self, capsys):
        assert lint_main([fixture("swallow_ok.py")]) == EXIT_OK

    def test_exit_contract_findings(self, capsys):
        assert lint_main([fixture("swallow_bad.py")]) == EXIT_FINDINGS
        assert EXIT_FINDINGS == 1

    def test_exit_contract_bad_usage(self, tmp_path, capsys):
        assert lint_main(["--rule", "no-such-rule", "."]) == EXIT_BAD_INPUT
        assert lint_main([str(tmp_path / "missing")]) == EXIT_BAD_INPUT
        assert EXIT_BAD_INPUT == 2

    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        assert lint_main([str(path)]) == EXIT_FINDINGS
        assert "parse-error" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_json_report_matches_golden(self, monkeypatch, capsys, tmp_path):
        monkeypatch.chdir(REPO_ROOT)
        out_file = tmp_path / "report.json"
        code = lint_main(
            [
                "--format", "json",
                "--output", str(out_file),
                "tests/lint_fixtures/cache_key_bad.py",
                "tests/lint_fixtures/taxonomy_bad.py",
            ]
        )
        assert code == EXIT_FINDINGS
        stdout = capsys.readouterr().out
        with open(fixture("golden_report.json"), encoding="utf-8") as fh:
            golden = json.load(fh)
        assert json.loads(stdout) == golden
        assert json.loads(out_file.read_text()) == golden

    def test_repro_cli_lint_subcommand(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        code = cli_main(["lint", "tests/lint_fixtures/taxonomy_bad.py"])
        assert code == EXIT_FINDINGS
        assert "error-taxonomy" in capsys.readouterr().out

    def test_self_check_src_repro_is_clean(self, monkeypatch, capsys):
        """The shipped tree passes its own linter (empty baseline)."""
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint", "src/repro"]) == EXIT_OK
        assert "0 findings" in capsys.readouterr().out

    def test_shipped_baseline_is_empty(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert load_baseline("lint-baseline.json") == frozenset()


# ----------------------------------------------------------------------
# acceptance mirror: seed each violation into a scratch tree -> exit 1
# ----------------------------------------------------------------------
SEEDS = [
    (
        "no-recursion",
        ("repro", "core", "scratch.py"),
        "def total(node, children):\n"
        "    return 1 + sum(total(c, children) for c in children[node])\n",
    ),
    (
        "monotonic-clock",
        ("repro", "obs", "scratch.py"),
        "import time\n\n\ndef age(t0):\n    return time.time() - t0\n",
    ),
    (
        "no-blocking-in-async",
        ("repro", "service", "scratch.py"),
        "import time\n\n\nasync def handler():\n    time.sleep(1)\n",
    ),
    (
        "no-swallowed-exceptions",
        ("repro", "service", "scratch.py"),
        "def f(g):\n    try:\n        return g()\n    except:\n        pass\n",
    ),
    (
        "cache-key-discipline",
        ("repro", "api", "scratch.py"),
        "class R(CanonicalRequest):\n"
        "    hidden: int\n\n"
        "    def key_params(self):\n"
        "        return {}\n",
    ),
    (
        "error-taxonomy",
        ("repro", "api", "scratch.py"),
        "def f():\n    raise ProtocolError('made_up_code', 'nope')\n",
    ),
]


class TestAcceptanceSeeds:
    @pytest.mark.parametrize("rule_id,where,body", SEEDS, ids=[s[0] for s in SEEDS])
    def test_seeded_violation_fails_with_rule_in_json_report(
        self, tmp_path, capsys, rule_id, where, body
    ):
        path = tmp_path.joinpath(*where)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        report_file = tmp_path / "report.json"
        code = cli_main(
            ["lint", "--format", "json", "--output", str(report_file), str(path)]
        )
        capsys.readouterr()
        assert code == EXIT_FINDINGS
        report = json.loads(report_file.read_text())
        assert rule_id in report["summary"]["rules"]
        assert any(f["rule"] == rule_id for f in report["findings"])
