"""Forest-layer equivalence: batched solving must be byte-identical.

A seeded property harness draws 200+ trees across every family the
repository generates (the same family pool as the kernel-engine
cross-validation), packs them into :class:`ArrayForest` batches through
every constructor, and asserts that

* each member's derived buffers (CSR children, topo, wbar, totals) are
  **byte-identical** to a standalone ``ArrayTree`` of the same columns;
* every forest sweep — best postorders (loop *and* vectorised engine),
  Liu peaks/schedules, FiF simulation, full registry-strategy
  traversals — reproduces the per-tree kernels and registry exactly:
  same schedules, same I/O functions and volumes, same peaks;
* the wire form (``pack``/``from_packed``) and the buffer-digest cache
  keys are faithful to the identity columns;
* invalid forests fail with the same ``TreeError`` vocabulary as the
  per-tree constructors, naming the offending tree.

Exact equality (never "close") is the contract: the forest path
replaces per-tree dispatch in the batch engine and the service, so any
divergence is a bug.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels
from repro.core import forest_kernels as fk
from repro.core.arraytree import ArrayTree
from repro.core.forest import ArrayForest
from repro.core.simulator import InfeasibleSchedule
from repro.core.tree import TreeError
from repro.datasets.store import cache_key_buffers
from repro.experiments.registry import get_algorithm

from tests.test_kernel_crossval import FAMILIES, _make_tree

BASE_SEED = 20170208
NUM_TREES = 208  # a multiple of the family count; >= 200 per the contract


def _mixed_trees():
    """208 seeded trees cycling through every family, sizes 1–400."""
    trees = []
    for i in range(NUM_TREES):
        family = FAMILIES[i % len(FAMILIES)]
        rng = np.random.default_rng(BASE_SEED + 7919 * i)
        n = int(rng.integers(1, 401))
        trees.append(_make_tree(family, n, rng))
    return trees


@pytest.fixture(scope="module")
def trees():
    return _mixed_trees()


@pytest.fixture(scope="module")
def ats(trees):
    return [ArrayTree.from_task_tree(t) for t in trees]


@pytest.fixture(scope="module")
def forest(trees):
    return ArrayForest.from_pairs(
        [(list(t.parents), list(t.weights)) for t in trees]
    )


@pytest.fixture(scope="module")
def mems(ats):
    """One mid-regime bound per tree (clamped feasible)."""
    out = []
    for at in ats:
        lb = at.min_feasible_memory()
        peak = kernels.liu_peak(at)
        out.append(max(max(1, lb), (lb + peak - 1) // 2))
    return out


def _assert_same_buffers(tk: ArrayTree, at: ArrayTree):
    assert tk._parents == at._parents
    assert tk._weights == at._weights
    assert tk._child_start == at._child_start
    assert tk._child_index == at._child_index
    assert tk._topo == at._topo
    assert tk._wbar == at._wbar
    assert tk._root == at._root
    assert tk._total_weight == at._total_weight


class TestConstruction:
    def test_every_constructor_matches_arraytree(self, trees, ats, forest):
        from_trees = ArrayForest.from_trees(trees)
        from_packed = ArrayForest.from_packed(forest.pack())
        for f in (forest, from_trees, from_packed):
            assert f.n_trees == len(trees)
            assert f.total_nodes == sum(t.n for t in trees)
            for k, at in enumerate(ats):
                _assert_same_buffers(f.tree(k), at)

    def test_task_tree_members_round_trip(self, trees, forest):
        for k in (0, 7, NUM_TREES - 1):
            assert forest.task_tree(k) == trees[k]

    def test_sizes_and_offsets(self, trees, forest):
        assert forest.sizes().tolist() == [t.n for t in trees]
        assert int(forest.offsets[0]) == 0
        assert len(forest) == len(trees)

    def test_pack_roundtrip_is_exact(self, forest):
        blob = forest.pack()
        again = ArrayForest.from_packed(blob)
        assert np.array_equal(again._parents, forest._parents)
        assert np.array_equal(again._weights, forest._weights)
        assert again.pack() == blob

    def test_column_buffers_digest_stability(self, forest):
        params = {"kind": "t", "version": 0}
        a = cache_key_buffers(params, forest.column_buffers())
        b = cache_key_buffers(
            params,
            {
                "offsets": forest.offsets.tolist(),
                "parents": forest._parents.tolist(),
                "weights": forest._weights.tolist(),
            },
        )
        assert a == b  # container-independent digests

    def test_empty_forest(self):
        f = ArrayForest([0], [], [])
        assert f.n_trees == 0 and f.total_nodes == 0
        assert fk.forest_lower_bounds(f) == []
        assert fk.forest_best_postorders(f) == []

    def test_single_node_trees(self):
        f = ArrayForest([0, 1, 2], [-1, -1], [5, 9])
        assert fk.forest_lower_bounds(f) == [5, 9]
        assert fk.forest_min_peaks(f) == [5, 9]
        assert fk.forest_best_postorders(f, [7, 11]) == [
            ([0], [5], [0]),
            ([0], [9], [0]),
        ]


class TestValidation:
    @pytest.mark.parametrize(
        "offsets, parents, weights, fragment",
        [
            ([0, 2], [-1, -1, 0], [1, 1, 1], "columns disagree"),
            ([0, 0], [], [], "at least one node"),
            ([0, 3], [-1, -1, 0], [1, 1, 1], "tree 0: more than one root"),
            ([0, 1, 2], [-1, 0], [1, 1], "tree 1: no root"),
            ([0, 2], [-1, 5], [1, 1], "out-of-range parent"),
            ([0, 2], [-1, 0], [1, -5], "negative"),
            # 2-cycle behind the root
            ([0, 3], [-1, 2, 1], [1, 1, 1], "tree 0: graph is not connected"),
            # power-of-two cycle (pointer doubling converges to identity)
            ([0, 1, 6], [-1, -1, 4, 1, 2, 3], [1] * 6,
             "tree 1: graph is not connected"),
        ],
    )
    def test_rejects(self, offsets, parents, weights, fragment):
        with pytest.raises(TreeError, match=fragment):
            ArrayForest(offsets, parents, weights)

    def test_per_tree_weight_budget(self):
        with pytest.raises(TreeError, match="int64 budget"):
            ArrayForest([0, 2], [-1, 0], [2**62, 2**62])

    def test_forest_wide_weight_budget(self):
        # each tree individually fits; the forest total does not
        with pytest.raises(TreeError, match="forest-wide"):
            ArrayForest([0, 1, 2], [-1, -1], [2**61 + 2**60] * 2)

    def test_truncated_pack_rejected(self, forest):
        with pytest.raises(TreeError, match="packed forest"):
            ArrayForest.from_packed(forest.pack()[:-8])


class TestKernelEquivalence:
    @pytest.mark.parametrize("vectorize", [False, True])
    def test_best_postorders(self, ats, forest, mems, vectorize):
        mm = fk.forest_best_postorders(forest, None, vectorize=vectorize)
        io = fk.forest_best_postorders(forest, mems, vectorize=vectorize)
        for k, at in enumerate(ats):
            assert mm[k] == kernels.best_postorder(at, None)
            assert io[k] == kernels.best_postorder(at, mems[k])

    @pytest.mark.parametrize("vectorize", [False, True])
    def test_flat_form_matches_lists(self, forest, mems, vectorize):
        per_tree = fk.forest_best_postorders(forest, mems, vectorize=vectorize)
        sched, storage, vio = fk.forest_best_postorders_flat(
            forest, mems, vectorize=vectorize
        )
        off = forest.offsets.tolist()
        for k, (s, st, v) in enumerate(per_tree):
            a, b = off[k], off[k + 1]
            assert sched[a:b].tolist() == s
            assert storage[a:b].tolist() == st
            assert vio[a:b].tolist() == v
        no_sched = fk.forest_best_postorders_flat(
            forest, mems, vectorize=vectorize, schedules=False
        )
        assert no_sched[0] is None
        assert np.array_equal(no_sched[1], storage)
        assert np.array_equal(no_sched[2], vio)

    @pytest.mark.parametrize("vectorize", [False, True])
    def test_lower_bounds_and_peaks(self, ats, forest, vectorize):
        lbs = fk.forest_lower_bounds(forest)
        peaks = fk.forest_min_peaks(forest, vectorize=vectorize)
        bounds = fk.forest_memory_bounds(forest)
        for k, at in enumerate(ats):
            assert lbs[k] == at.min_feasible_memory()
            assert peaks[k] == kernels.liu_peak(at)
            assert bounds[k] == (lbs[k], peaks[k])

    @pytest.mark.parametrize("vectorize", [False, True])
    def test_opt_min_mem(self, ats, forest, vectorize):
        out = fk.forest_opt_min_mem(forest, vectorize=vectorize)
        for k, (schedule, peak) in enumerate(out):
            assert (schedule, peak) == kernels.liu_schedule(ats[k])

    @pytest.mark.parametrize("vectorize", [False, True])
    def test_simulate_fif(self, ats, forest, mems, vectorize):
        schedules = [s for s, _st, _v in fk.forest_best_postorders(forest, mems)]
        sims = fk.forest_simulate_fif(
            forest, schedules, mems, vectorize=vectorize
        )
        for k, at in enumerate(ats):
            assert sims[k] == kernels.simulate_fif(at, schedules[k], mems[k])

    @pytest.mark.parametrize("vectorize", [False, True])
    def test_simulate_fif_infeasible_matches(self, ats, forest, vectorize):
        k = next(
            k for k, at in enumerate(ats) if at.min_feasible_memory() > 1
        )
        schedules = [
            s for s, _st, _v in fk.forest_best_postorders(forest, None)
        ]
        mems = [None] * forest.n_trees
        mems[k] = ats[k].min_feasible_memory() - 1
        with pytest.raises(InfeasibleSchedule) as exc:
            fk.forest_simulate_fif(forest, schedules, mems, vectorize=vectorize)
        # same message as the per-tree kernel, both engines
        with pytest.raises(InfeasibleSchedule) as ref:
            kernels.simulate_fif(ats[k], schedules[k], mems[k])
        assert str(exc.value) == str(ref.value)

    def test_partial_schedule_error_names_the_tree(self, forest, mems):
        schedules = [
            s for s, _st, _v in fk.forest_best_postorders(forest, mems)
        ]
        schedules[5] = schedules[5][:-1]
        n = forest.sizes().tolist()[5]
        with pytest.raises(
            ValueError,
            match=rf"tree 5: .*expected {n} nodes, got {n - 1}",
        ):
            fk.forest_simulate_fif(forest, schedules, mems)

    def test_bool_memory_bounds_rejected(self, forest, mems):
        with pytest.raises(TypeError, match="bool"):
            fk.forest_best_postorders(forest, True)
        per_tree = list(mems)
        per_tree[2] = True
        with pytest.raises(TypeError, match="tree 2: .*bool"):
            fk.forest_best_postorders(forest, per_tree)

    @pytest.mark.parametrize("algorithm", fk.FOREST_STRATEGIES)
    def test_traversals_match_registry(self, trees, forest, mems, algorithm):
        strategy = get_algorithm(algorithm)
        travs = fk.forest_traversals(forest, algorithm, mems)
        for k, tree in enumerate(trees):
            assert travs[k] == strategy(tree, mems[k])

    def test_unknown_forest_strategy(self, forest, mems):
        with pytest.raises(KeyError, match="no forest kernel"):
            fk.forest_traversals(forest, "RecExpand", mems)

    def test_vector_engine_rejects_mixed_modes(self, forest, mems):
        mixed = list(mems)
        mixed[3] = None
        with pytest.raises(ValueError, match="mixed"):
            fk.forest_best_postorders(forest, mixed, vectorize=True)
        # the loop path handles mixed modes fine
        out = fk.forest_best_postorders(forest, mixed, vectorize=False)
        assert out[3] == kernels.best_postorder(
            ArrayForest.from_trees([forest.tree(3)]).tree(0), None
        )

    def test_memory_count_mismatch(self, forest):
        with pytest.raises(ValueError, match="memory bounds"):
            fk.forest_best_postorders(forest, [1, 2, 3])


class TestDeepForest:
    """Chains past the vectorised budgets stay exact via the fallbacks."""

    def test_deep_chain_forest(self):
        n = 6000  # deeper than _VECTOR_MAX_DEPTH
        rng = np.random.default_rng(5)
        weights = rng.integers(1, 100, size=n).astype(np.int64)
        parents = np.arange(-1, n - 1, dtype=np.int64)
        f = ArrayForest.from_pairs([(parents, weights), ([-1, 0], [3, 4])])
        assert f.max_depth() == n - 1
        at = ArrayTree(parents, weights)
        mm = fk.forest_best_postorders(f, None)
        assert mm[0] == kernels.best_postorder(at, None)
        _assert_same_buffers(f.tree(0), at)


def _chain(n, weights):
    return (list(range(-1, n - 1)), list(weights))


def _star(n, weights):
    return ([-1] + [0] * (n - 1), list(weights))


def _binary(n, weights):
    return ([-1] + [(i - 1) // 2 for i in range(1, n)], list(weights))


def _adversarial_forests():
    """Merge-tie and degenerate shapes aimed at the vectorised cores."""
    rng = np.random.default_rng(BASE_SEED)

    def w(n, lo, hi):
        return rng.integers(lo, hi, size=n).tolist()

    return {
        # maximal hill–valley merge ties: every candidate segment equal
        "all-equal": [
            _binary(31, [7] * 31),
            _star(40, [3] * 40),
            _chain(25, [5] * 25),
            _binary(64, [1] * 64),
            ([-1], [2]),
        ],
        # deep single-child chains (arity-1 levels, identity merges)
        "chains": [
            _chain(800, w(800, 1, 50)),
            _chain(799, [9] * 799),
            _chain(2, [1, 10 ** 9]),
            _chain(500, w(500, 1, 4)),
        ],
        # zero-weight nodes: zero-size residents are never evictable
        "zero-weights": [
            _binary(50, [0] * 50),
            _star(30, [0, 5] * 15),
            _chain(40, [i % 2 for i in range(40)]),
            _binary(33, w(33, 0, 3)),
        ],
        # single-node members interleaved with real trees
        "singletons": [
            ([-1], [1]),
            _binary(100, w(100, 1, 100)),
            ([-1], [10 ** 12]),
            ([-1], [0]),
            _star(10, w(10, 1, 9)),
        ],
    }


class TestAdversarialFamilies:
    """Both engines stay byte-identical on the shapes built to split them."""

    @pytest.mark.parametrize("family", sorted(_adversarial_forests()))
    def test_liu_and_fif_equivalence(self, family):
        pairs = _adversarial_forests()[family]
        forest = ArrayForest.from_pairs(pairs)
        peaks_l = fk.forest_min_peaks(forest, vectorize=False)
        peaks_v = fk.forest_min_peaks(forest, vectorize=True)
        assert peaks_l == peaks_v
        assert fk.forest_opt_min_mem(
            forest, vectorize=False
        ) == fk.forest_opt_min_mem(forest, vectorize=True)
        lbs = fk.forest_lower_bounds(forest)
        schedules = [
            s for s, _st, _v in fk.forest_best_postorders(forest, None)
        ]
        for mems in (
            None,
            [max(1, lb) for lb in lbs],  # tightest feasible: max eviction
            [
                max(max(1, lb), (lb + pk - 1) // 2)
                for lb, pk in zip(lbs, peaks_l)
            ],
        ):
            assert fk.forest_simulate_fif(
                forest, schedules, mems, vectorize=False
            ) == fk.forest_simulate_fif(
                forest, schedules, mems, vectorize=True
            )

    def test_mixed_infeasible_parity_tree_by_tree(self):
        """Each infeasible member raises identically on both engines."""
        pairs = _adversarial_forests()["singletons"]
        forest = ArrayForest.from_pairs(pairs)
        lbs = fk.forest_lower_bounds(forest)
        schedules = [
            s for s, _st, _v in fk.forest_best_postorders(forest, None)
        ]
        for k, lb in enumerate(lbs):
            if lb <= 1:
                continue
            mems = [None] * forest.n_trees
            mems[k] = lb - 1
            with pytest.raises(InfeasibleSchedule) as loop_exc:
                fk.forest_simulate_fif(
                    forest, schedules, mems, vectorize=False
                )
            with pytest.raises(InfeasibleSchedule) as vec_exc:
                fk.forest_simulate_fif(
                    forest, schedules, mems, vectorize=True
                )
            assert str(loop_exc.value) == str(vec_exc.value)
