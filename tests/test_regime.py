"""Tests for I/O-versus-memory regime analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.analysis.bounds import memory_bounds
from repro.analysis.regime import IOCurve, io_curve, sample_memories
from repro.core.tree import TaskTree

from .conftest import task_trees


class TestSampling:
    @given(tree=task_trees(min_nodes=2, max_nodes=9))
    @settings(max_examples=30)
    def test_endpoints_always_included(self, tree):
        bounds = memory_bounds(tree)
        memories = sample_memories(tree)
        assert memories[0] == bounds.lb
        assert memories[-1] == bounds.peak_incore

    @given(tree=task_trees(min_nodes=2, max_nodes=9))
    @settings(max_examples=30)
    def test_samples_sorted_and_unique(self, tree):
        memories = sample_memories(tree, samples=6)
        assert memories == sorted(set(memories))

    def test_small_regime_enumerated_exactly(self):
        tree = TaskTree([-1, 0, 1, 0, 3], [1, 3, 4, 3, 4])  # LB 6, peak 7
        assert sample_memories(tree, samples=12) == [6, 7]

    def test_minimum_two_samples(self):
        tree = TaskTree([-1], [3])
        with pytest.raises(ValueError):
            sample_memories(tree, samples=1)


class TestCurves:
    def _io_tree(self):
        # Wide-regime instance so the curve has structure.
        from repro.datasets.synth import synth_instance

        for seed in range(1, 80):
            tree = synth_instance(50, seed=seed)
            bounds = memory_bounds(tree)
            if bounds.peak_incore - bounds.lb >= 8:
                return tree
        raise AssertionError("no wide-regime instance found")

    def test_curve_endpoints(self):
        tree = self._io_tree()
        curve = io_curve(tree, "OptMinMem")
        assert curve.volumes[-1] == 0  # at Peak_incore no I/O is needed
        assert curve.volumes[0] >= curve.volumes[-1]

    def test_optminmem_is_monotone(self):
        """Fixed schedule + FiF: more memory can never cost more I/O."""
        tree = self._io_tree()
        curve = io_curve(tree, "OptMinMem", samples=10)
        assert curve.monotone_violations() == []

    @given(tree=task_trees(min_nodes=3, max_nodes=8))
    @settings(max_examples=25)
    def test_optminmem_monotone_property(self, tree):
        curve = io_curve(tree, "OptMinMem", samples=6)
        assert curve.monotone_violations() == []

    def test_area_is_one_for_no_io(self):
        tree = TaskTree([-1, 0], [2, 3])  # chain: LB == peak, never any I/O
        curve = io_curve(tree, "OptMinMem", memories=[5, 6, 7])
        assert curve.area() == pytest.approx(1.0)

    def test_knee_finds_the_big_drop(self):
        curve = IOCurve("x", (4, 5, 6, 7), (90, 80, 10, 0))
        assert curve.knee() == 5  # the 80 -> 10 drop follows M=5

    def test_knee_flat_curve(self):
        curve = IOCurve("x", (4, 5), (0, 0))
        assert curve.knee() == 4

    def test_monotone_violation_detection(self):
        curve = IOCurve("x", (4, 5, 6), (10, 12, 0))
        assert curve.monotone_violations() == [5]

    def test_callable_strategy_accepted(self):
        from repro.experiments.registry import get_algorithm

        tree = self._io_tree()
        fn = get_algorithm("RecExpand")
        curve = io_curve(tree, fn, samples=4)
        assert len(curve.volumes) == len(curve.memories)

    def test_area_orders_strategies_sensibly(self):
        tree = self._io_tree()
        rec = io_curve(tree, "RecExpand", samples=8)
        post = io_curve(tree, "PostOrderMinIO", samples=8)
        assert rec.area() <= post.area() + 1e-9
