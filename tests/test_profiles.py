"""Tests for Dolan–Moré performance profiles."""

from __future__ import annotations

import pytest

from repro.analysis.profiles import (
    build_profile,
    profile_from_io,
    render_ascii,
    to_csv,
)


def simple_profile():
    # Three instances.  A: perfs 1.0, 1.0, 2.0; B: 1.0, 1.5, 1.0.
    return build_profile({"A": [1.0, 1.0, 2.0], "B": [1.0, 1.5, 1.0]})


class TestBuildProfile:
    def test_fraction_at_zero_counts_wins(self):
        prof = simple_profile()
        assert prof.curve("A").fraction_at(0.0) == pytest.approx(2 / 3)
        assert prof.curve("B").fraction_at(0.0) == pytest.approx(2 / 3)

    def test_fraction_at_large_threshold_is_one(self):
        prof = simple_profile()
        assert prof.curve("A").fraction_at(10.0) == 1.0
        assert prof.curve("B").fraction_at(10.0) == 1.0

    def test_intermediate_threshold(self):
        prof = simple_profile()
        # B's only loss is 1.5 vs best 1.0 -> 50% overhead.
        assert prof.curve("B").fraction_at(0.49) == pytest.approx(2 / 3)
        assert prof.curve("B").fraction_at(0.50) == 1.0

    def test_curves_monotone_nondecreasing(self):
        prof = simple_profile()
        for curve in prof.curves:
            fracs = list(curve.fractions)
            assert fracs == sorted(fracs)

    def test_single_algorithm_always_one(self):
        prof = build_profile({"only": [1.0, 1.7, 2.0]})
        assert prof.curve("only").fraction_at(0.0) == 1.0

    def test_explicit_thresholds(self):
        prof = build_profile({"A": [1.0], "B": [1.3]}, thresholds=[0.0, 0.1, 0.5])
        assert prof.curve("B").fraction_at(0.1) == 0.0
        assert prof.curve("B").fraction_at(0.5) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_profile({})
        with pytest.raises(ValueError):
            build_profile({"A": []})

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="differ"):
            build_profile({"A": [1.0], "B": [1.0, 1.0]})

    def test_rejects_sub_one_performance(self):
        with pytest.raises(ValueError, match="impossible"):
            build_profile({"A": [0.9]})

    def test_curve_lookup_error(self):
        with pytest.raises(KeyError):
            simple_profile().curve("missing")

    def test_num_instances(self):
        assert simple_profile().num_instances == 3

    def test_fraction_below_first_threshold(self):
        prof = build_profile({"A": [1.0], "B": [1.5]}, thresholds=[0.2, 0.6])
        assert prof.curve("B").fraction_at(0.1) == 0.0


class TestProfileFromIO:
    def test_matches_manual_metric(self):
        prof = profile_from_io(
            {"A": [0, 10], "B": [5, 0]},
            memories=[10, 10],
        )
        # A perf: 1.0, 2.0; B perf: 1.5, 1.0
        assert prof.curve("A").fraction_at(0.0) == 0.5
        assert prof.performances["A"] == (1.0, 2.0)

    def test_strict_zip(self):
        with pytest.raises(ValueError):
            profile_from_io({"A": [0, 1]}, memories=[10])


class TestRendering:
    def test_ascii_contains_legend_and_axis(self):
        art = render_ascii(simple_profile())
        assert "o A" in art and "x B" in art
        assert "overhead" in art
        assert " 1.00 |" in art

    def test_ascii_zero_overhead_profile(self):
        art = render_ascii(build_profile({"A": [1.0], "B": [1.0]}))
        assert "o A" in art

    def test_csv_shape(self):
        csv = to_csv(simple_profile())
        lines = csv.splitlines()
        assert lines[0] == "threshold,A,B"
        assert all(len(line.split(",")) == 3 for line in lines[1:])
        # last row: everything within threshold
        assert lines[-1].endswith("1.000000,1.000000")
