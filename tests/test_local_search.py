"""Tests for the local-search schedule post-optimizer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.local_search import LocalSearchResult, local_search
from repro.core.traversal import validate
from repro.core.tree import chain_tree

from .conftest import trees_with_memory


class TestInvariants:
    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    @settings(max_examples=40)
    def test_never_regresses(self, tm):
        tree, memory = tm
        result = local_search(tree, memory)
        assert result.io_volume <= result.start_io
        assert result.improvement >= 0

    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    @settings(max_examples=40)
    def test_output_is_valid(self, tm):
        tree, memory = tm
        result = local_search(tree, memory)
        validate(tree, result.traversal, memory)

    @given(tm=trees_with_memory(max_nodes=7, max_weight=9))
    @settings(max_examples=30)
    def test_respects_optimum(self, tm):
        from repro.algorithms.brute_force import min_io_brute

        tree, memory = tm
        opt, _ = min_io_brute(tree, memory)
        assert local_search(tree, memory).io_volume >= opt

    def test_budget_respected(self):
        from repro.datasets.synth import synth_instance
        from repro.analysis.bounds import memory_bounds

        tree = synth_instance(60, seed=11)
        bounds = memory_bounds(tree)
        memory = bounds.mid if bounds.has_io_regime else bounds.peak_incore
        result = local_search(tree, memory, max_evaluations=25)
        assert result.evaluations <= 26  # initial cost + budgeted moves


class TestRecovery:
    def test_improves_a_bad_postorder_on_figure_2a(self):
        """Starting from the postorder-killer, search must claw back I/O."""
        from repro.datasets.instances import figure_2a
        from repro.experiments.registry import get_algorithm

        inst = figure_2a()
        bad = get_algorithm("PostOrderMinIO")(inst.tree, inst.memory)
        result = local_search(
            inst.tree, inst.memory, bad.schedule, max_rounds=20
        )
        assert result.io_volume < bad.io_volume

    def test_recexpand_is_a_deep_local_optimum_on_figure_6(self):
        """On Fig 6 RecExpand is optimal (3); search cannot beat it."""
        from repro.datasets.instances import figure_6
        from repro.experiments.registry import get_algorithm

        inst = figure_6()
        start = get_algorithm("RecExpand")(inst.tree, inst.memory)
        result = local_search(inst.tree, inst.memory, start.schedule)
        assert result.io_volume == 3

    def test_fixes_optminmem_on_figure_2c(self):
        """OptMinMem pays ~k(k+1) on Fig 2(c); shifts repair the order."""
        from repro.datasets.instances import figure_2c
        from repro.experiments.registry import get_algorithm

        inst = figure_2c(3)
        start = get_algorithm("OptMinMem")(inst.tree, inst.memory)
        result = local_search(
            inst.tree, inst.memory, start.schedule, max_rounds=30
        )
        assert result.io_volume < start.io_volume


class TestValidation:
    def test_rejects_non_permutation(self):
        tree = chain_tree([2, 3])
        with pytest.raises(ValueError, match="permutation"):
            local_search(tree, 5, [0, 0])

    def test_rejects_unknown_neighborhood(self):
        tree = chain_tree([2, 3])
        with pytest.raises(ValueError, match="neighborhoods"):
            local_search(tree, 5, neighborhoods=("teleport",))

    def test_swap_only_mode(self):
        tree = chain_tree([3, 5, 2, 6])
        result = local_search(tree, 7, neighborhoods=("swap",))
        assert isinstance(result, LocalSearchResult)
        validate(tree, result.traversal, 7)
