"""Tests for the tree-statistics analysis module."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.analysis.tree_stats import TreeStats, dataset_table, tree_stats
from repro.core.tree import TaskTree, balanced_binary_tree, chain_tree, star_tree

from .conftest import task_trees


class TestTreeStats:
    def test_chain(self):
        stats = tree_stats(chain_tree([1, 2, 3, 4]))
        assert stats.n == 4
        assert stats.depth == 3
        assert stats.leaves == 1
        assert stats.max_arity == 1
        assert stats.balance == pytest.approx(2 / 3)

    def test_star(self):
        stats = tree_stats(star_tree(1, [1, 1, 1, 1]))
        assert stats.depth == 1
        assert stats.leaves == 4
        assert stats.max_arity == 4
        assert stats.balance == 0.0

    def test_single_node(self):
        stats = tree_stats(TaskTree([-1], [5]))
        assert stats.n == 1
        assert stats.balance == 0.0
        assert stats.mean_arity_internal == 0.0

    def test_weight_statistics(self):
        stats = tree_stats(TaskTree([-1, 0], [2, 2]))
        assert stats.weight_cv == 0.0
        assert stats.total_weight == 4
        assert stats.max_weight == 2

    def test_io_regime_width(self):
        from repro.datasets.instances import figure_2b

        stats = tree_stats(figure_2b().tree)
        assert stats.io_regime_width == 2  # peak 8, LB 6

    def test_balanced_tree_arity(self):
        stats = tree_stats(balanced_binary_tree(3))
        assert stats.max_arity == 2
        assert stats.mean_arity_internal == pytest.approx(2.0)

    @given(task_trees(max_nodes=12))
    def test_invariants(self, tree):
        stats = tree_stats(tree)
        assert stats.leaves >= 1
        assert 0 <= stats.depth <= stats.n - 1
        assert stats.lb <= stats.peak_incore
        assert 0.0 <= stats.balance <= 1.0


class TestDatasetTable:
    def test_table_shape(self):
        trees = [chain_tree([1, 2]), star_tree(1, [1, 1])]
        table = dataset_table(trees, name="unit")
        lines = table.splitlines()
        assert lines[0] == "unit: 2 trees"
        assert "depth" in lines[1]
        assert len(lines) == 2 + 2 + 1  # header x2, rows, aggregate

    def test_aggregate_mentions_regime_count(self):
        from repro.datasets.instances import figure_2b

        table = dataset_table([figure_2b().tree])
        assert "1/1 trees have an I/O regime" in table

    def test_empty_dataset(self):
        table = dataset_table([], name="empty")
        assert table.splitlines()[0] == "empty: 0 trees"
