"""Tests for the RecExpand / FullRecExpand heuristics (Algorithm 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.brute_force import min_io_brute
from repro.algorithms.liu import LiuSolver, min_peak_memory
from repro.algorithms.rec_expand import (
    ExpansionLimitExceeded,
    full_rec_expand,
    rec_expand,
)
from repro.core.simulator import fif_io_volume
from repro.core.traversal import validate
from repro.core.tree import TaskTree, chain_tree, star_tree
from repro.datasets.instances import figure_2b, figure_6, figure_7

from .conftest import trees_with_memory


class TestPaperExamples:
    def test_figure_6_reaches_optimum(self):
        inst = figure_6()
        result = full_rec_expand(inst.tree, inst.memory)
        assert result.io_volume == 3  # the paper's optimal value
        assert result.expanded_io == 3
        assert result.residual_io == 0
        validate(inst.tree, result.traversal, inst.memory)

    def test_figure_6_expansion_story(self):
        # b is expanded by 2, then its residual reduced by 1: 2 expansions.
        inst = figure_6()
        result = full_rec_expand(inst.tree, inst.memory)
        assert result.expansions == 2
        assert result.expanded_tree_size == inst.tree.n + 2

    def test_figure_7_not_optimal(self):
        # The paper's point: no expansion-guided strategy reaches 3 here.
        inst = figure_7()
        result = full_rec_expand(inst.tree, inst.memory)
        assert result.io_volume == 4
        opt, _ = min_io_brute(inst.tree, inst.memory)
        assert opt == 3

    def test_figure_2b_beats_optminmem(self):
        inst = figure_2b()
        from repro.algorithms.liu import opt_min_mem

        schedule, _ = opt_min_mem(inst.tree)
        liu_io = fif_io_volume(inst.tree, schedule, inst.memory)
        result = full_rec_expand(inst.tree, inst.memory)
        assert result.io_volume <= liu_io
        assert result.io_volume == 3  # matches the witness optimum


class TestMechanics:
    def test_no_expansion_when_memory_suffices(self):
        tree = star_tree(1, [2, 3])
        peak = min_peak_memory(tree)
        result = full_rec_expand(tree, peak)
        assert result.expansions == 0
        assert result.io_volume == 0
        assert result.expanded_tree_size == tree.n

    def test_rejects_memory_below_lb(self):
        tree = star_tree(1, [2, 3])
        with pytest.raises(ValueError, match="minimal feasible"):
            full_rec_expand(tree, tree.min_feasible_memory() - 1)

    def test_rec_expand_is_cap_two(self):
        inst = figure_6()
        capped = full_rec_expand(inst.tree, inst.memory, iteration_cap=2)
        assert rec_expand(inst.tree, inst.memory) == capped

    def test_iteration_cap_zero_degenerates_to_optminmem(self):
        from repro.algorithms.liu import opt_min_mem

        inst = figure_2b()
        result = full_rec_expand(inst.tree, inst.memory, iteration_cap=0)
        schedule, _ = opt_min_mem(inst.tree)
        assert result.expansions == 0
        assert result.io_volume == fif_io_volume(inst.tree, schedule, inst.memory)

    def test_global_budget_raises(self):
        inst = figure_2b()
        with pytest.raises(ExpansionLimitExceeded):
            full_rec_expand(inst.tree, inst.memory, max_total_iterations=0)

    def test_full_rec_expand_tree_fits_after(self):
        """FULLRECEXPAND's postcondition: the expanded tree is I/O-free."""
        inst = figure_2b()
        result = full_rec_expand(inst.tree, inst.memory)
        assert result.residual_io == 0

    def test_monotone_iteration_caps(self):
        # More iterations never hurt on these instances.
        inst = figure_2b()
        ios = [
            full_rec_expand(inst.tree, inst.memory, iteration_cap=c).io_volume
            for c in (0, 1, 2, None)
        ]
        assert ios == sorted(ios, reverse=True) or ios[-1] <= ios[0]


class TestInvariants:
    @given(trees_with_memory())
    @settings(max_examples=80)
    def test_valid_and_bounded_by_expansions(self, tree_memory):
        tree, memory = tree_memory
        for result in (rec_expand(tree, memory), full_rec_expand(tree, memory)):
            validate(tree, result.traversal, memory)
            assert result.io_volume == result.traversal.io_volume
            assert result.io_volume <= result.expanded_io + result.residual_io
            assert result.expanded_tree_size >= tree.n

    @given(trees_with_memory(max_nodes=6))
    @settings(max_examples=50)
    def test_never_below_brute_force_optimum(self, tree_memory):
        tree, memory = tree_memory
        opt, _ = min_io_brute(tree, memory)
        assert rec_expand(tree, memory).io_volume >= opt
        assert full_rec_expand(tree, memory).io_volume >= opt

    @given(trees_with_memory())
    @settings(max_examples=50)
    def test_full_rec_expand_expanded_tree_is_io_free(self, tree_memory):
        tree, memory = tree_memory
        result = full_rec_expand(tree, memory)
        assert result.residual_io == 0

    @given(trees_with_memory())
    @settings(max_examples=50)
    def test_no_io_needed_implies_untouched_tree(self, tree_memory):
        tree, memory = tree_memory
        if memory >= min_peak_memory(tree):
            result = full_rec_expand(tree, memory)
            assert result.expansions == 0 and result.io_volume == 0


class TestScalability:
    def test_deep_chain(self):
        # Alternating weights force I/O along a deep chain.
        n = 2000
        weights = [3 if i % 2 else 1 for i in range(n)]
        tree = TaskTree([i - 1 for i in range(n)], weights)
        memory = tree.min_feasible_memory()
        result = rec_expand(tree, memory)
        validate(tree, result.traversal, memory)

    def test_wide_star(self):
        tree = star_tree(1, [2] * 400)
        memory = tree.min_feasible_memory()
        result = rec_expand(tree, memory)
        validate(tree, result.traversal, memory)
        assert result.io_volume == 0  # the root step dominates anyway
