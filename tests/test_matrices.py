"""Tests for the sparse-matrix generators and orderings."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets.matrices import (
    ORDERINGS,
    grid_laplacian_2d,
    grid_laplacian_3d,
    minimum_degree_ordering,
    natural_ordering,
    permute_symmetric,
    random_ordering,
    random_symmetric_pattern,
    rcm_ordering,
)


def is_symmetric(a: sp.spmatrix) -> bool:
    return (a != a.T).nnz == 0


class TestGenerators:
    def test_grid2d_shape_and_stencil(self):
        a = grid_laplacian_2d(4, 5)
        assert a.shape == (20, 20)
        assert is_symmetric(a)
        # interior vertex has 4 neighbours + diagonal
        degrees = np.asarray((a > 0).sum(axis=1)).ravel()
        assert degrees.max() == 5
        assert degrees.min() == 3  # corners

    def test_grid3d_shape_and_stencil(self):
        a = grid_laplacian_3d(3, 3, 3)
        assert a.shape == (27, 27)
        assert is_symmetric(a)
        degrees = np.asarray((a > 0).sum(axis=1)).ravel()
        assert degrees.max() == 7  # center vertex

    def test_grid_has_unit_diagonal(self):
        a = grid_laplacian_2d(3, 3)
        assert np.all(a.diagonal() == 1)

    def test_random_pattern_symmetric_with_diagonal(self):
        a = random_symmetric_pattern(50, 4.0, np.random.default_rng(0))
        assert a.shape == (50, 50)
        assert is_symmetric(a)
        assert np.all(a.diagonal() == 1)

    def test_random_pattern_density(self):
        n, deg = 300, 6.0
        a = random_symmetric_pattern(n, deg, np.random.default_rng(1))
        offdiag = a.nnz - n
        assert 0.5 * n * deg < offdiag < 1.5 * n * deg

    def test_random_pattern_rejects_bad_degree(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_symmetric_pattern(10, 0, rng)
        with pytest.raises(ValueError):
            random_symmetric_pattern(10, 10, rng)


class TestOrderings:
    @pytest.fixture
    def matrix(self):
        return grid_laplacian_2d(6, 6)

    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_every_ordering_is_permutation(self, matrix, name):
        perm = ORDERINGS[name](matrix, np.random.default_rng(0))
        assert sorted(perm) == list(range(matrix.shape[0]))

    def test_natural_is_identity(self, matrix):
        assert list(natural_ordering(matrix)) == list(range(36))

    def test_random_ordering_deterministic_given_rng(self, matrix):
        a = random_ordering(matrix, np.random.default_rng(5))
        b = random_ordering(matrix, np.random.default_rng(5))
        assert list(a) == list(b)

    def test_rcm_reduces_bandwidth(self, matrix):
        # Scramble, then RCM should tighten the bandwidth well below random.
        rng = np.random.default_rng(2)
        scrambled = permute_symmetric(matrix, random_ordering(matrix, rng))

        def bandwidth(m):
            coo = sp.coo_matrix(m)
            return int(np.abs(coo.row - coo.col).max())

        ordered = permute_symmetric(scrambled, rcm_ordering(scrambled))
        assert bandwidth(ordered) < bandwidth(scrambled)

    def test_mindeg_eliminates_leaves_first_on_path(self):
        # On a path graph, minimum degree starts at an endpoint (degree 1).
        n = 10
        a = sp.diags([np.ones(n - 1), np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        order = minimum_degree_ordering(sp.csr_matrix(a))
        assert order[0] in (0, n - 1)

    def test_mindeg_no_fill_on_path(self):
        """A path has a perfect elimination order; min-degree must find one
        (zero fill => every eliminated vertex has degree <= 1 at its turn)."""
        from repro.datasets.elimination import factor_column_counts, elimination_tree

        n = 12
        a = sp.csr_matrix(
            sp.diags([np.ones(n - 1), np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        )
        perm = minimum_degree_ordering(a)
        p = permute_symmetric(a, perm)
        parent = elimination_tree(p)
        counts = factor_column_counts(p, parent)
        # no fill: factor nnz equals matrix lower-triangle nnz
        assert counts.sum() == n + (n - 1)


class TestPermute:
    def test_permute_roundtrip(self):
        a = grid_laplacian_2d(4, 4)
        rng = np.random.default_rng(3)
        perm = random_ordering(a, rng)
        b = permute_symmetric(a, perm)  # b[i, j] = a[perm[i], perm[j]]
        # permuting with the inverse permutation restores a
        back = permute_symmetric(b, np.argsort(perm))
        assert (back != a).nnz == 0

    def test_permute_preserves_symmetry_and_nnz(self):
        a = grid_laplacian_2d(5, 3)
        perm = np.random.default_rng(4).permutation(15)
        b = permute_symmetric(a, perm)
        assert is_symmetric(b)
        assert b.nnz == a.nnz
