"""Tests for the disk timing model (repro.io.device)."""

from __future__ import annotations

import pytest

from repro.core.tree import star_tree
from repro.io.device import HDD, SSD, DiskModel, coalesce_runs, estimate_time
from repro.io.pager import PageEvent, paged_io


def _ev(op: str, *pages: int) -> list[PageEvent]:
    return [PageEvent(step=i, op=op, page=p, node=0) for i, p in enumerate(pages)]


class TestCoalesce:
    def test_empty_trace(self):
        assert coalesce_runs([]) == []

    def test_single_event_is_one_run(self):
        assert coalesce_runs(_ev("write", 5)) == [("write", 5, 1)]

    def test_ascending_pages_coalesce(self):
        assert coalesce_runs(_ev("write", 3, 4, 5)) == [("write", 3, 3)]

    def test_descending_pages_coalesce(self):
        assert coalesce_runs(_ev("read", 9, 8, 7)) == [("read", 9, 3)]

    def test_direction_change_breaks_run(self):
        runs = coalesce_runs(_ev("write", 3, 4, 3))
        assert runs == [("write", 3, 2), ("write", 3, 1)]

    def test_gap_breaks_run(self):
        runs = coalesce_runs(_ev("write", 1, 2, 9, 10))
        assert runs == [("write", 1, 2), ("write", 9, 2)]

    def test_op_change_breaks_run(self):
        events = _ev("write", 1, 2) + _ev("read", 3, 4)
        runs = coalesce_runs(events)
        assert runs == [("write", 1, 2), ("read", 3, 2)]


class TestEstimate:
    def test_empty_trace_costs_nothing(self):
        stats = estimate_time([])
        assert stats.seconds == 0.0 and stats.runs == 0

    def test_one_long_run_beats_scattered_pages(self):
        contiguous = estimate_time(_ev("write", *range(100)))
        scattered = estimate_time(_ev("write", *range(0, 200, 2)))
        assert contiguous.seconds < scattered.seconds
        assert contiguous.runs == 1
        assert scattered.runs == 100

    def test_ssd_much_faster_than_hdd_on_random_io(self):
        events = _ev("write", *range(0, 100, 2))
        assert estimate_time(events, SSD).seconds < estimate_time(events, HDD).seconds

    def test_read_factor_scales_reads_only(self):
        slow_reads = DiskModel(seek_seconds=0.0, bandwidth_pages=1000.0, read_factor=3.0)
        writes = estimate_time(_ev("write", *range(10)), slow_reads)
        reads = estimate_time(_ev("read", *range(10)), slow_reads)
        assert reads.seconds == pytest.approx(3 * writes.seconds)

    def test_counters(self):
        events = _ev("write", 1, 2) + _ev("read", 1, 2)
        stats = estimate_time(events)
        assert stats.write_pages == 2 and stats.read_pages == 2
        assert stats.pages == 4
        assert stats.mean_run_length == pytest.approx(2.0)


class TestEndToEnd:
    def test_pager_trace_feeds_the_device_model(self):
        from repro.core.tree import TaskTree

        tree = TaskTree(parents=[-1, 0, 1, 0, 3], weights=[1, 3, 4, 3, 4])
        res = paged_io(tree, [2, 4, 1, 3, 0], memory=6, trace=True)
        assert res.write_pages > 0
        stats = estimate_time(res.events)
        assert stats.pages == res.write_pages + res.read_pages
        assert stats.seconds > 0
