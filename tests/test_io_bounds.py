"""Tests for the certified I/O lower bounds and the Portfolio strategy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.brute_force import min_io_brute
from repro.analysis.io_bounds import IOLowerBound, io_lower_bound, peak_io_lower_bound
from repro.core.traversal import validate
from repro.core.tree import chain_tree, star_tree
from repro.experiments.registry import get_algorithm

from .conftest import homogeneous_trees, trees_with_memory


class TestPeakBound:
    @given(tm=trees_with_memory(max_nodes=7, max_weight=9))
    @settings(max_examples=50)
    def test_never_exceeds_the_optimum(self, tm):
        tree, memory = tm
        opt, _ = min_io_brute(tree, memory)
        assert peak_io_lower_bound(tree, memory) <= opt

    def test_zero_when_memory_at_peak(self):
        from repro.algorithms.liu import min_peak_memory

        tree = chain_tree([3, 5, 2, 6])
        assert peak_io_lower_bound(tree, min_peak_memory(tree)) == 0

    def test_tight_on_a_star(self):
        # Star roots force all leaves resident: peak == wbar(root), and
        # every unit above M must be written.
        tree = star_tree(1, [4, 4, 4])
        assert peak_io_lower_bound(tree, 12) == 0
        opt, _ = min_io_brute(tree, 12)
        assert opt == 0

    def test_weak_on_figure_2a(self):
        """The documented weakness: optimum 1, bound stuck near zero."""
        from repro.datasets.instances import figure_2a

        inst = figure_2a()
        assert peak_io_lower_bound(inst.tree, inst.memory) <= 1


class TestBestBound:
    @given(tm=trees_with_memory(max_nodes=7, max_weight=9))
    @settings(max_examples=50)
    def test_sound_on_heterogeneous_trees(self, tm):
        tree, memory = tm
        opt, _ = min_io_brute(tree, memory)
        bound = io_lower_bound(tree, memory)
        assert bound.value <= opt

    @given(tree=homogeneous_trees(max_nodes=8))
    @settings(max_examples=40)
    def test_exact_on_homogeneous_trees(self, tree):
        memory = max(tree.min_feasible_memory(), 2)
        opt, _ = min_io_brute(tree, memory)
        bound = io_lower_bound(tree, memory)
        assert bound.exact
        assert bound.source == "homogeneous"
        assert bound.value == opt

    def test_infeasible_memory_raises(self):
        tree = star_tree(1, [4, 4])
        with pytest.raises(ValueError):
            io_lower_bound(tree, 7)

    def test_provenance_labels(self):
        hom = io_lower_bound(chain_tree([1, 1, 1]), 2)
        assert isinstance(hom, IOLowerBound) and hom.source == "homogeneous"
        het = io_lower_bound(chain_tree([3, 5, 2, 6]), 7)
        assert het.source in ("peak", "trivial")


class TestPortfolio:
    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    @settings(max_examples=40)
    def test_portfolio_never_worse_than_members(self, tm):
        tree, memory = tm
        portfolio = get_algorithm("Portfolio")(tree, memory)
        validate(tree, portfolio, memory)
        for name in ("OptMinMem", "PostOrderMinIO", "RecExpand"):
            member = get_algorithm(name)(tree, memory)
            assert portfolio.io_volume <= member.io_volume

    def test_portfolio_wins_on_both_appendix_figures(self):
        """Fig 6 favours RecExpand, Fig 7 the postorder; Portfolio gets both."""
        from repro.datasets.instances import figure_6, figure_7

        for inst in (figure_6(), figure_7()):
            t = get_algorithm("Portfolio")(inst.tree, inst.memory)
            assert t.io_volume == 3  # the optimum in both cases


class TestExactRegistryEntry:
    def test_exact_strategy_on_small_tree(self):
        tree = chain_tree([3, 5, 2, 6])
        t = get_algorithm("Exact")(tree, 7)
        validate(tree, t, 7)

    def test_exact_strategy_guards_large_trees(self):
        tree = chain_tree([1] * 30)
        with pytest.raises(ValueError):
            get_algorithm("Exact")(tree, 2)
