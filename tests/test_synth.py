"""Tests for the SYNTH generators: shape counts, uniformity, determinism."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.tree import TaskTree
from repro.datasets.synth import (
    random_binary_tree,
    random_plane_tree,
    random_weights,
    synth_dataset,
    synth_instance,
)


def canonical_shape(tree: TaskTree) -> tuple:
    """A canonical form treating children as ordered by subtree canon."""

    def canon(v: int) -> tuple:
        return tuple(sorted(canon(c) for c in tree.children[v]))

    return canon(tree.root)


CATALAN = [1, 1, 2, 5, 14, 42, 132]


class TestBinaryTrees:
    def test_sizes(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 5, 50, 500):
            tree = random_binary_tree(n, rng)
            assert tree.n == n

    def test_binary_arity(self):
        rng = np.random.default_rng(1)
        tree = random_binary_tree(200, rng)
        assert all(len(c) <= 2 for c in tree.children)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            random_binary_tree(0, np.random.default_rng(0))

    def test_unit_weights_by_default(self):
        tree = random_binary_tree(10, np.random.default_rng(2))
        assert set(tree.weights) == {1}

    def test_unordered_shape_distribution_n3(self):
        """n=3 binary trees: 5 ordered shapes collapse to 3 unordered ones
        with multiplicities 4 (chains), 1 (cherry+...).

        Unordered: chain (4 ordered variants), root with two leaves (1).
        So expect chain:balanced at 4:1.
        """
        rng = np.random.default_rng(3)
        counts = Counter(
            canonical_shape(random_binary_tree(3, rng)) for _ in range(5000)
        )
        assert len(counts) == 2
        chain = (((),),)
        balanced = ((), ())
        ratio = counts[chain] / counts[balanced]
        assert 3.4 < ratio < 4.6  # 4 ± sampling noise

    def test_expected_leaf_fraction(self):
        """Uniform Catalan binary trees: node out-degrees converge to
        (0, 1, 2 children) ~ (1/4, 1/2, 1/4), so the leaf fraction is ~1/4."""
        rng = np.random.default_rng(4)
        tree = random_binary_tree(3000, rng)
        frac = len(tree.leaves()) / tree.n
        assert 0.21 < frac < 0.29
        two_child = sum(1 for c in tree.children if len(c) == 2) / tree.n
        assert 0.21 < two_child < 0.29

    def test_determinism_with_same_seed(self):
        a = random_binary_tree(50, np.random.default_rng(7))
        b = random_binary_tree(50, np.random.default_rng(7))
        assert a == b


class TestPlaneTrees:
    def test_sizes(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 3, 10, 200):
            assert random_plane_tree(n, rng).n == n

    def test_single_node(self):
        assert random_plane_tree(1, np.random.default_rng(0)).n == 1

    def test_shape_distribution_n4(self):
        """Plane trees with 4 nodes: C_3 = 5 ordered shapes; unordered
        multiplicities: chain 1, root-3-leaves 1, cherry-over-chain ... .

        Count by root arity instead (exact): arity 1: C_2=2, arity 2: 2,
        arity 3: 1 of the 5 ordered shapes.
        """
        rng = np.random.default_rng(5)
        arity = Counter(
            len(random_plane_tree(4, rng).children[random_plane_tree(1, rng).root])
            for _ in range(0)
        )
        # simpler: root arity of each sample
        samples = [random_plane_tree(4, rng) for _ in range(5000)]
        arity = Counter(len(t.children[t.root]) for t in samples)
        total = sum(arity.values())
        assert abs(arity[1] / total - 2 / 5) < 0.05
        assert abs(arity[2] / total - 2 / 5) < 0.05
        assert abs(arity[3] / total - 1 / 5) < 0.05

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            random_plane_tree(0, np.random.default_rng(0))


class TestWeights:
    def test_range(self):
        rng = np.random.default_rng(0)
        ws = random_weights(1000, rng, 1, 100)
        assert min(ws) >= 1 and max(ws) <= 100
        assert min(ws) < 10 and max(ws) > 90  # both tails exercised

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            random_weights(5, np.random.default_rng(0), 5, 4)

    def test_plain_ints(self):
        ws = random_weights(5, np.random.default_rng(0))
        assert all(type(w) is int for w in ws)


class TestDatasetAssembly:
    def test_instance_deterministic(self):
        assert synth_instance(100, seed=3) == synth_instance(100, seed=3)

    def test_different_seeds_differ(self):
        assert synth_instance(100, seed=3) != synth_instance(100, seed=4)

    def test_dataset_shape(self):
        ds = synth_dataset(5, 60, seed=1)
        assert len(ds) == 5
        assert all(t.n == 60 for t in ds)
        assert len({t for t in ds}) == 5  # all distinct

    def test_plane_shape_option(self):
        t = synth_instance(50, seed=1, shape="plane")
        assert t.n == 50

    def test_rejects_unknown_shape(self):
        with pytest.raises(ValueError, match="unknown shape"):
            synth_instance(10, seed=0, shape="triangular")

    def test_weight_range_option(self):
        t = synth_instance(200, seed=0, weight_range=(5, 7))
        assert set(t.weights) <= {5, 6, 7}
