"""Tests for the experiment runner (repro.experiments.runner)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.figures import figure10
from repro.experiments.runner import (
    ExperimentReport,
    figure_summary,
    report_to_text,
    run_counterexamples,
    run_figures,
)


@pytest.fixture(scope="module")
def counterexamples():
    return run_counterexamples(fig2a_extensions=(0,), fig2c_ks=(2,))


class TestCounterexamples:
    def test_all_instances_present(self, counterexamples):
        assert set(counterexamples) == {
            "fig2a_ext0", "fig2b", "fig2c_k2", "fig6", "fig7"
        }

    def test_rows_carry_all_algorithms(self, counterexamples):
        row = counterexamples["fig2b"]
        assert {"FullRecExpand", "OptMinMem", "PostOrderMinIO"} <= set(row["io"])

    def test_witnesses_recorded(self, counterexamples):
        assert counterexamples["fig2b"]["witness_io"] == 3
        assert counterexamples["fig2c_k2"]["witness_io"] == 4

    def test_no_algorithm_beats_the_witness_on_fig2a(self, counterexamples):
        row = counterexamples["fig2a_ext0"]
        assert all(io >= row["witness_io"] for io in row["io"].values())


class TestFigureSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return figure_summary(figure10("tiny"))

    def test_summary_fields(self, summary):
        assert summary["bound"] == "M2"
        assert summary["instances"] > 0
        assert set(summary["algorithms"]) >= {"OptMinMem", "RecExpand"}

    def test_wins_are_fractions(self, summary):
        for stats in summary["algorithms"].values():
            assert 0.0 <= stats["wins"] <= 1.0

    def test_curves_monotone_in_threshold(self, summary):
        for stats in summary["algorithms"].values():
            curve = [stats["curve"][k] for k in sorted(stats["curve"], key=float)]
            assert curve == sorted(curve)

    def test_fig10_equality_claim(self, summary):
        """At M2 the three non-postorder strategies all win everywhere."""
        for name in ("OptMinMem", "RecExpand", "FullRecExpand"):
            assert summary["algorithms"][name]["wins"] == 1.0


class TestReport:
    def test_run_figures_subset(self):
        out = run_figures("tiny", figure_ids=["fig10"])
        assert set(out) == {"fig10"}
        assert "seconds" in out["fig10"]

    def test_report_serialises_to_json(self):
        report = ExperimentReport(scale="tiny", started_at=0.0)
        report.counterexamples = run_counterexamples(
            fig2a_extensions=(0,), fig2c_ks=(2,)
        )
        report.figures = run_figures("tiny", figure_ids=["fig10"])
        payload = json.loads(report.to_json())
        assert payload["scale"] == "tiny"
        assert "fig2b" in payload["counterexamples"]

    def test_report_to_text_renders_tables(self):
        report = ExperimentReport(scale="tiny", started_at=0.0)
        report.counterexamples = run_counterexamples(
            fig2a_extensions=(0,), fig2c_ks=(2,)
        )
        report.figures = run_figures("tiny", figure_ids=["fig10"])
        text = report_to_text(report)
        assert "counterexamples" in text
        assert "fig10" in text
        assert "RecExpand" in text

    def test_progress_callback_invoked(self):
        seen = []
        run_figures("tiny", figure_ids=["fig10"], progress=seen.append)
        assert len(seen) == 1 and "fig10" in seen[0]
