"""Tests for the seed-robustness sweep (repro.experiments.robustness)."""

from __future__ import annotations

import pytest

from repro.experiments.robustness import SeedSweep, seed_sweep


@pytest.fixture(scope="module")
def sweep() -> SeedSweep:
    return seed_sweep("synth", "Mmid", scale="tiny", seeds=(1, 2, 3))


class TestSweep:
    def test_covers_every_seed_and_algorithm(self, sweep):
        assert sweep.seeds == (1, 2, 3)
        for a in sweep.algorithms:
            assert len(sweep.win_fractions[a]) == 3
            assert len(sweep.mean_overheads[a]) == 3

    def test_pooled_sizes_match(self, sweep):
        sizes = {len(v) for v in sweep.pooled_performances.values()}
        assert len(sizes) == 1

    def test_win_fractions_are_fractions(self, sweep):
        for vals in sweep.win_fractions.values():
            assert all(0.0 <= v <= 1.0 for v in vals)

    def test_cis_are_ordered(self, sweep):
        for a in sweep.algorithms:
            lo, hi = sweep.win_ci(a, seed=1)
            assert lo <= hi

    def test_conclusion_stable_across_seeds(self, sweep):
        """RecExpand's mean win fraction dominates on every seed."""
        rec = sweep.win_fractions["RecExpand"]
        post = sweep.win_fractions["PostOrderMinIO"]
        assert all(r >= p for r, p in zip(rec, post))

    def test_significance_rows_cover_all_pairs(self, sweep):
        rows = sweep.significance(seed=1)
        assert len(rows) == 3  # C(3, 2)

    def test_summary_renders(self, sweep):
        text = sweep.summary()
        assert "RecExpand" in text and "p =" in text

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep("matrices")
