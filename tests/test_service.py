"""Tests for the scheduling service (repro.service).

Everything here runs against a real socket: the server thread binds an
ephemeral port and the synchronous client talks HTTP to it.  The pool
runs in inline (thread) mode so strategies registered by the tests are
visible to the workers and backpressure can be provoked deterministically.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.datasets.instances import figure_2b
from repro.datasets.store import ResultCache
from repro.experiments.registry import ALGORITHMS, get_algorithm, register_algorithm
from repro.service import (
    ProtocolError,
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceError,
    parse_request,
)
from repro.service.protocol import ExactRequest, PagingRequest, SolveRequest


TREE = figure_2b().tree
TREE_DICT = TREE.to_dict()


def _request(**overrides):
    base = {"kind": "solve", "tree": TREE_DICT, "memory": 6, "algorithm": "RecExpand"}
    base.update(overrides)
    return base


# --------------------------------------------------------------------- #
# protocol validation (no server needed)
# --------------------------------------------------------------------- #


class TestProtocolValidation:
    @pytest.mark.parametrize(
        "mutation, code",
        [
            ({"kind": "wat"}, "unknown_kind"),
            ({"tree": None}, "bad_field"),
            ({"tree": {"parents": [0, -1], "weights": [1]}}, "invalid_tree"),
            ({"tree": {"parents": [0, 0], "weights": [1, 1]}}, "invalid_tree"),
            ({"tree": {"parents": [-1, "x"], "weights": [1, 1]}}, "bad_field"),
            ({"memory": 0}, "bad_field"),
            ({"memory": "lots"}, "bad_field"),
            ({"memory": None}, "bad_field"),
            ({"algorithm": "Nope"}, "unknown_algorithm"),
            ({"timeout": -1}, "bad_field"),
            ({"timeout": "fast"}, "bad_field"),
        ],
    )
    def test_bad_solve_requests(self, mutation, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(_request(**mutation))
        assert err.value.code == code

    def test_non_object_body(self):
        with pytest.raises(ProtocolError) as err:
            parse_request([1, 2, 3])
        assert err.value.code == "bad_request"

    @pytest.mark.parametrize(
        "mutation, code",
        [
            ({"policies": []}, "bad_field"),
            ({"policies": ["belady", "nope"]}, "unknown_policy"),
            ({"page_size": 0}, "bad_field"),
            ({"seed": -1}, "bad_field"),
        ],
    )
    def test_bad_paging_requests(self, mutation, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(_request(kind="paging", **mutation))
        assert err.value.code == code

    @pytest.mark.parametrize(
        "mutation, code",
        [
            ({"max_states": 0}, "bad_field"),
            ({"node_limit": 65}, "bad_field"),
        ],
    )
    def test_bad_exact_requests(self, mutation, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(_request(kind="exact", **mutation))
        assert err.value.code == code

    def test_valid_requests_parse(self):
        assert isinstance(parse_request(_request()), SolveRequest)
        assert isinstance(parse_request(_request(kind="paging")), PagingRequest)
        assert isinstance(parse_request(_request(kind="exact")), ExactRequest)

    def test_kind_defaults_to_solve(self):
        obj = _request()
        del obj["kind"]
        assert isinstance(parse_request(obj), SolveRequest)

    def test_key_is_content_addressed(self):
        a = parse_request(_request()).key()
        # field order must not matter
        reordered = dict(reversed(list(_request().items())))
        assert parse_request(reordered).key() == a
        # any input change must change the key
        assert parse_request(_request(memory=7)).key() != a
        assert parse_request(_request(algorithm="OptMinMem")).key() != a
        # the timeout is delivery policy, not content
        assert parse_request(_request(timeout=5)).key() == a


# --------------------------------------------------------------------- #
# server fixtures
# --------------------------------------------------------------------- #


def _slow_strategy(tree, memory):
    time.sleep(0.3)
    return get_algorithm("OptMinMem")(tree, memory)


@pytest.fixture
def slow_algorithm():
    name = "TestSlowService"
    if name not in ALGORITHMS:
        register_algorithm(name, _slow_strategy)
    yield name
    ALGORITHMS.pop(name, None)


@pytest.fixture
def server(tmp_path):
    """A served instance with an on-disk cache and two inline workers."""
    cache = ResultCache(tmp_path / "cache")
    config = ServerConfig(port=0, workers=0, inline_threads=2)
    with ServerThread(config, cache=cache) as thread:
        client = ServiceClient(port=thread.port, timeout=30.0)
        assert client.wait_ready(15)
        yield thread.server, client


# --------------------------------------------------------------------- #
# round-trips over a real socket
# --------------------------------------------------------------------- #


class TestRoundTrip:
    def test_solve_matches_offline(self, server):
        _, client = server
        result = client.solve(TREE, 6, algorithm="FullRecExpand")
        offline = get_algorithm("FullRecExpand")(TREE, 6)
        assert result["io_volume"] == offline.io_volume == 3
        assert result["schedule"] == list(offline.schedule)
        assert result["performance"] == offline.performance(6)
        assert {int(v): a for v, a in result["io"].items()} == {
            v: a for v, a in enumerate(offline.io) if a
        }

    def test_paging_and_exact(self, server):
        _, client = server
        paging = client.paging(TREE, 6, policies=["belady", "lru"])
        assert [row["policy"] for row in paging["policies"]] == ["belady", "lru"]
        assert all(row["write_pages"] >= 0 for row in paging["policies"])
        exact = client.exact(TREE, 6)
        assert exact["io_volume"] == 3 and exact["optimal"]
        assert set(exact["gaps"]) == {
            "OptMinMem", "PostOrderMinIO", "RecExpand", "FullRecExpand",
        }

    def test_cli_submit_matches_cli_solve(self, server, tmp_path, capsys):
        from repro.cli import main

        _, client = server
        tree_file = tmp_path / "tree.json"
        tree_file.write_text(json.dumps(TREE_DICT))
        argv_tail = [
            "--tree", str(tree_file), "--memory", "6",
            "--algorithm", "FullRecExpand", "--show-schedule",
        ]
        assert main(["solve", *argv_tail]) == 0
        offline_out = capsys.readouterr().out
        assert (
            main(["submit", "--port", str(client.port), *argv_tail]) == 0
        )
        served_out = capsys.readouterr().out
        assert served_out == offline_out  # byte-identical, per the contract

    def test_cli_submit_paging_matches_cli_paging(self, server, tmp_path, capsys):
        """Default policy set (and output) must match the offline command."""
        from repro.cli import main

        _, client = server
        tree_file = tmp_path / "tree.json"
        tree_file.write_text(json.dumps(TREE_DICT))
        argv_tail = ["--tree", str(tree_file), "--memory", "8", "--page-size", "2"]
        assert main(["paging", *argv_tail]) == 0
        offline_out = capsys.readouterr().out
        assert (
            main(
                ["submit", "--port", str(client.port), "--kind", "paging", *argv_tail]
            )
            == 0
        )
        assert capsys.readouterr().out == offline_out

    def test_oversized_header_is_a_400_not_a_dropped_connection(self, server):
        _, client = server
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.putrequest("GET", "/healthz", skip_host=True)
            conn.putheader("Host", "localhost")
            conn.putheader("X-Junk", "j" * 100_000)  # blows the 64 KiB line limit
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            body = json.loads(response.read())
            assert body["error"]["code"] == "bad_request"
        finally:
            conn.close()

    def test_error_envelope_over_socket(self, server):
        _, client = server
        with pytest.raises(ServiceError) as err:
            client.submit(_request(algorithm="Nope"))
        assert err.value.code == "unknown_algorithm"
        assert err.value.status == 400

    def test_unsolvable_is_a_422(self, server):
        _, client = server
        # memory below the tree's minimal feasible bound
        with pytest.raises(ServiceError) as err:
            client.submit(_request(memory=1))
        assert err.value.code == "unsolvable"
        assert err.value.status == 422

    def test_unknown_endpoint_404(self, server):
        _, client = server
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.code == "not_found"

    def test_health_and_metrics_shape(self, server):
        _, client = server
        assert client.health()["ok"] is True
        client.solve(TREE, 6)
        metrics = client.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["requests"]["completed"] >= 1
        assert {"hits", "misses"} <= set(metrics["cache"])
        assert {"p50", "p90", "p99", "count"} <= set(metrics["latency_ms"])
        assert metrics["latency_ms"]["count"] >= 1


# --------------------------------------------------------------------- #
# dedup, caching, backpressure, timeouts
# --------------------------------------------------------------------- #


class TestDedupAndCache:
    def test_repeat_request_is_a_cache_hit(self, server):
        srv, client = server
        first = client.submit(_request())
        second = client.submit(_request())
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"] == first["result"]
        assert srv.metrics.computed == 1

    def test_identical_concurrent_submissions_compute_once(
        self, server, slow_algorithm
    ):
        srv, client = server
        request = _request(algorithm=slow_algorithm)
        envelopes = []
        errors = []

        def submit():
            try:
                envelopes.append(client.submit(request))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(envelopes) == 4
        results = [e["result"] for e in envelopes]
        assert all(r == results[0] for r in results)
        # one computation served everybody: the rest were coalesced
        assert srv.metrics.computed == 1
        assert srv.metrics.deduped_inflight >= 1
        assert sum(1 for e in envelopes if e["deduped"]) >= 1

    def test_sixteen_concurrent_clients_zero_drops(self, server):
        srv, client = server
        outcomes = []
        errors = []

        def submit(i):
            try:
                outcomes.append(client.solve(TREE, 6 + i))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(outcomes) == 16
        assert srv.metrics.rejected == 0
        # every memory bound is a distinct request; all computed, none dropped
        offline = {6 + i: get_algorithm("RecExpand")(TREE, 6 + i).io_volume for i in range(16)}
        assert sorted(r["io_volume"] for r in outcomes) == sorted(offline.values())


class TestBackpressureAndTimeouts:
    def test_full_queue_rejects_with_429(self, tmp_path, slow_algorithm):
        config = ServerConfig(
            port=0,
            workers=0,
            inline_threads=1,  # one busy worker ...
            queue_limit=1,  # ... and a single queue slot
            max_batch=1,
            batch_window_ms=0.5,
        )
        with ServerThread(config, cache=ResultCache(tmp_path / "cache")) as thread:
            client = ServiceClient(port=thread.port, timeout=30.0)
            assert client.wait_ready(15)
            rejected = []
            succeeded = []

            def submit(i):
                try:
                    succeeded.append(
                        client.submit(_request(algorithm=slow_algorithm, memory=6 + i))
                    )
                except ServiceError as exc:
                    rejected.append(exc)

            threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert succeeded, "the service must keep serving under overload"
            assert rejected, "a full queue must reject, not buffer unboundedly"
            assert all(e.code == "queue_full" and e.status == 429 for e in rejected)
            assert thread.server.metrics.rejected == len(rejected)

    def test_deadline_returns_504_but_computation_completes(
        self, server, slow_algorithm
    ):
        srv, client = server
        request = _request(algorithm=slow_algorithm, timeout=0.05)
        with pytest.raises(ServiceError) as err:
            client.submit(request)
        assert err.value.code == "timeout"
        assert err.value.status == 504
        # the abandoned computation still lands in the cache for the retry
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if srv.cache.get(parse_request(request).key()) is not None:
                break
            time.sleep(0.05)
        retry = client.submit(_request(algorithm=slow_algorithm))
        assert retry["cached"] is True
