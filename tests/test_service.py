"""Tests for the scheduling service (repro.service).

Everything here runs against a real socket: the server thread binds an
ephemeral port and the synchronous client talks HTTP to it.  The pool
runs in inline (thread) mode so strategies registered by the tests are
visible to the workers and backpressure can be provoked deterministically.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.datasets.instances import figure_2b
from repro.datasets.store import ResultCache
from repro.experiments.registry import ALGORITHMS, get_algorithm, register_algorithm
from repro.service import (
    ProtocolError,
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceError,
    parse_request,
)
from repro.service.protocol import ExactRequest, PagingRequest, SolveRequest


TREE = figure_2b().tree
TREE_DICT = TREE.to_dict()


def _request(**overrides):
    base = {"kind": "solve", "tree": TREE_DICT, "memory": 6, "algorithm": "RecExpand"}
    base.update(overrides)
    return base


# --------------------------------------------------------------------- #
# protocol validation (no server needed)
# --------------------------------------------------------------------- #


class TestProtocolValidation:
    @pytest.mark.parametrize(
        "mutation, code",
        [
            ({"kind": "wat"}, "unknown_kind"),
            ({"tree": None}, "bad_field"),
            ({"tree": {"parents": [0, -1], "weights": [1]}}, "invalid_tree"),
            ({"tree": {"parents": [0, 0], "weights": [1, 1]}}, "invalid_tree"),
            ({"tree": {"parents": [-1, "x"], "weights": [1, 1]}}, "bad_field"),
            ({"memory": 0}, "bad_field"),
            ({"memory": "lots"}, "bad_field"),
            ({"memory": None}, "bad_field"),
            ({"algorithm": "Nope"}, "unknown_algorithm"),
            ({"timeout": -1}, "bad_field"),
            ({"timeout": "fast"}, "bad_field"),
        ],
    )
    def test_bad_solve_requests(self, mutation, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(_request(**mutation))
        assert err.value.code == code

    def test_non_object_body(self):
        with pytest.raises(ProtocolError) as err:
            parse_request([1, 2, 3])
        assert err.value.code == "bad_request"

    @pytest.mark.parametrize(
        "mutation, code",
        [
            ({"policies": []}, "bad_field"),
            ({"policies": ["belady", "nope"]}, "unknown_policy"),
            ({"page_size": 0}, "bad_field"),
            ({"seed": -1}, "bad_field"),
        ],
    )
    def test_bad_paging_requests(self, mutation, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(_request(kind="paging", **mutation))
        assert err.value.code == code

    @pytest.mark.parametrize(
        "mutation, code",
        [
            ({"max_states": 0}, "bad_field"),
            ({"node_limit": 65}, "bad_field"),
        ],
    )
    def test_bad_exact_requests(self, mutation, code):
        with pytest.raises(ProtocolError) as err:
            parse_request(_request(kind="exact", **mutation))
        assert err.value.code == code

    def test_valid_requests_parse(self):
        assert isinstance(parse_request(_request()), SolveRequest)
        assert isinstance(parse_request(_request(kind="paging")), PagingRequest)
        assert isinstance(parse_request(_request(kind="exact")), ExactRequest)

    def test_kind_defaults_to_solve(self):
        obj = _request()
        del obj["kind"]
        assert isinstance(parse_request(obj), SolveRequest)

    def test_key_is_content_addressed(self):
        a = parse_request(_request()).key()
        # field order must not matter
        reordered = dict(reversed(list(_request().items())))
        assert parse_request(reordered).key() == a
        # any input change must change the key
        assert parse_request(_request(memory=7)).key() != a
        assert parse_request(_request(algorithm="OptMinMem")).key() != a
        # the timeout is delivery policy, not content
        assert parse_request(_request(timeout=5)).key() == a


# --------------------------------------------------------------------- #
# server fixtures
# --------------------------------------------------------------------- #


def _slow_strategy(tree, memory):
    time.sleep(0.3)
    return get_algorithm("OptMinMem")(tree, memory)


@pytest.fixture
def slow_algorithm():
    name = "TestSlowService"
    if name not in ALGORITHMS:
        register_algorithm(name, _slow_strategy)
    yield name
    ALGORITHMS.pop(name, None)


@pytest.fixture
def server(tmp_path):
    """A served instance with an on-disk cache and two inline workers."""
    cache = ResultCache(tmp_path / "cache")
    config = ServerConfig(port=0, workers=0, inline_threads=2)
    with ServerThread(config, cache=cache) as thread:
        client = ServiceClient(port=thread.port, timeout=30.0)
        assert client.wait_ready(15)
        yield thread.server, client


# --------------------------------------------------------------------- #
# round-trips over a real socket
# --------------------------------------------------------------------- #


class TestRoundTrip:
    def test_solve_matches_offline(self, server):
        _, client = server
        result = client.solve(TREE, 6, algorithm="FullRecExpand")
        offline = get_algorithm("FullRecExpand")(TREE, 6)
        assert result["io_volume"] == offline.io_volume == 3
        assert result["schedule"] == list(offline.schedule)
        assert result["performance"] == offline.performance(6)
        assert {int(v): a for v, a in result["io"].items()} == {
            v: a for v, a in enumerate(offline.io) if a
        }

    def test_paging_and_exact(self, server):
        _, client = server
        paging = client.paging(TREE, 6, policies=["belady", "lru"])
        assert [row["policy"] for row in paging["policies"]] == ["belady", "lru"]
        assert all(row["write_pages"] >= 0 for row in paging["policies"])
        exact = client.exact(TREE, 6)
        assert exact["io_volume"] == 3 and exact["optimal"]
        assert set(exact["gaps"]) == {
            "OptMinMem", "PostOrderMinIO", "RecExpand", "FullRecExpand",
        }

    def test_cli_submit_matches_cli_solve(self, server, tmp_path, capsys):
        from repro.cli import main

        _, client = server
        tree_file = tmp_path / "tree.json"
        tree_file.write_text(json.dumps(TREE_DICT))
        argv_tail = [
            "--tree", str(tree_file), "--memory", "6",
            "--algorithm", "FullRecExpand", "--show-schedule",
        ]
        assert main(["solve", *argv_tail]) == 0
        offline_out = capsys.readouterr().out
        assert (
            main(["submit", "--port", str(client.port), *argv_tail]) == 0
        )
        served_out = capsys.readouterr().out
        assert served_out == offline_out  # byte-identical, per the contract

    def test_cli_submit_paging_matches_cli_paging(self, server, tmp_path, capsys):
        """Default policy set (and output) must match the offline command."""
        from repro.cli import main

        _, client = server
        tree_file = tmp_path / "tree.json"
        tree_file.write_text(json.dumps(TREE_DICT))
        argv_tail = ["--tree", str(tree_file), "--memory", "8", "--page-size", "2"]
        assert main(["paging", *argv_tail]) == 0
        offline_out = capsys.readouterr().out
        assert (
            main(
                ["submit", "--port", str(client.port), "--kind", "paging", *argv_tail]
            )
            == 0
        )
        assert capsys.readouterr().out == offline_out

    def test_oversized_header_is_a_400_not_a_dropped_connection(self, server):
        _, client = server
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.putrequest("GET", "/healthz", skip_host=True)
            conn.putheader("Host", "localhost")
            conn.putheader("X-Junk", "j" * 100_000)  # blows the 64 KiB line limit
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            body = json.loads(response.read())
            assert body["error"]["code"] == "bad_request"
        finally:
            conn.close()

    def test_error_envelope_over_socket(self, server):
        _, client = server
        with pytest.raises(ServiceError) as err:
            client.submit(_request(algorithm="Nope"))
        assert err.value.code == "unknown_algorithm"
        assert err.value.status == 400

    def test_unsolvable_is_a_422(self, server):
        _, client = server
        # memory below the tree's minimal feasible bound
        with pytest.raises(ServiceError) as err:
            client.submit(_request(memory=1))
        assert err.value.code == "unsolvable"
        assert err.value.status == 422

    def test_unknown_endpoint_404(self, server):
        _, client = server
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.code == "not_found"

    def test_health_and_metrics_shape(self, server):
        _, client = server
        assert client.health()["ok"] is True
        client.solve(TREE, 6)
        metrics = client.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["requests"]["completed"] >= 1
        assert {"hits", "misses"} <= set(metrics["cache"])
        assert {"p50", "p90", "p99", "count"} <= set(metrics["latency_ms"])
        assert metrics["latency_ms"]["count"] >= 1


# --------------------------------------------------------------------- #
# dedup, caching, backpressure, timeouts
# --------------------------------------------------------------------- #


class TestDedupAndCache:
    def test_repeat_request_is_a_cache_hit(self, server):
        srv, client = server
        first = client.submit(_request())
        second = client.submit(_request())
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"] == first["result"]
        assert srv.metrics.computed == 1

    def test_identical_concurrent_submissions_compute_once(
        self, server, slow_algorithm
    ):
        srv, client = server
        request = _request(algorithm=slow_algorithm)
        envelopes = []
        errors = []

        def submit():
            try:
                envelopes.append(client.submit(request))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(envelopes) == 4
        results = [e["result"] for e in envelopes]
        assert all(r == results[0] for r in results)
        # one computation served everybody: the rest were coalesced
        assert srv.metrics.computed == 1
        assert srv.metrics.deduped_inflight >= 1
        assert sum(1 for e in envelopes if e["deduped"]) >= 1

    def test_sixteen_concurrent_clients_zero_drops(self, server):
        srv, client = server
        outcomes = []
        errors = []

        def submit(i):
            try:
                outcomes.append(client.solve(TREE, 6 + i))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(outcomes) == 16
        assert srv.metrics.rejected == 0
        # every memory bound is a distinct request; all computed, none dropped
        offline = {6 + i: get_algorithm("RecExpand")(TREE, 6 + i).io_volume for i in range(16)}
        assert sorted(r["io_volume"] for r in outcomes) == sorted(offline.values())


class TestBackpressureAndTimeouts:
    def test_full_queue_rejects_with_429(self, tmp_path, slow_algorithm):
        config = ServerConfig(
            port=0,
            workers=0,
            inline_threads=1,  # one busy worker ...
            queue_limit=1,  # ... and a single queue slot
            max_batch=1,
            batch_window_ms=0.5,
        )
        with ServerThread(config, cache=ResultCache(tmp_path / "cache")) as thread:
            client = ServiceClient(port=thread.port, timeout=30.0)
            assert client.wait_ready(15)
            rejected = []
            succeeded = []

            def submit(i):
                try:
                    succeeded.append(
                        client.submit(_request(algorithm=slow_algorithm, memory=6 + i))
                    )
                except ServiceError as exc:
                    rejected.append(exc)

            threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert succeeded, "the service must keep serving under overload"
            assert rejected, "a full queue must reject, not buffer unboundedly"
            assert all(e.code == "queue_full" and e.status == 429 for e in rejected)
            assert thread.server.metrics.rejected == len(rejected)

    def test_deadline_returns_504_but_computation_completes(
        self, server, slow_algorithm
    ):
        srv, client = server
        request = _request(algorithm=slow_algorithm, timeout=0.05)
        with pytest.raises(ServiceError) as err:
            client.submit(request)
        assert err.value.code == "timeout"
        assert err.value.status == 504
        # the abandoned computation still lands in the cache for the retry
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if srv.cache.get(parse_request(request).key()) is not None:
                break
            time.sleep(0.05)
        retry = client.submit(_request(algorithm=slow_algorithm))
        assert retry["cached"] is True


# --------------------------------------------------------------------- #
# shared-memory transport (the forest wire path to process workers)
# --------------------------------------------------------------------- #


class TestSharedMemoryTransport:
    def _payloads(self):
        import numpy as np

        from repro.analysis.bounds import memory_bounds
        from repro.datasets.synth import synth_instance

        payloads = []
        for n, algorithm in ((60, "PostOrderMinIO"), (700, "OptMinMem"), (40, "RecExpand")):
            tree = synth_instance(n, seed=7)
            bounds = memory_bounds(tree)
            payloads.append(
                {
                    "kind": "solve",
                    "tree": tree.to_dict(),
                    "memory": bounds.mid if bounds.has_io_regime else bounds.peak_incore + 1,
                    "algorithm": algorithm,
                }
            )
        return payloads

    def test_trusted_tree_key_matches_tuple_key(self):
        import numpy as np

        payload = _request()
        parsed = parse_request(payload)
        trusted = parse_request(
            payload,
            trusted_tree=(
                np.asarray(parsed.parents),
                np.asarray(parsed.weights),
            ),
        )
        assert trusted.key() == parsed.key()
        # a second call reuses the cached digest
        assert trusted.key() is trusted.key()

    def test_pack_and_execute_in_process(self):
        from repro.service.pool import (
            _pack_batch,
            _release_shm,
            execute_many_shm,
            execute_payload,
        )

        payloads = self._payloads()
        packed = _pack_batch(payloads)
        assert packed is not None
        shm, stripped = packed
        try:
            assert [p["tree"] for p in stripped] == [
                {"shm": 0},
                {"shm": 1},
                {"shm": 2},
            ]
            got = execute_many_shm(shm.name, stripped, True)
        finally:
            _release_shm(shm)
        assert got == [execute_payload(p, seed_rng=True) for p in payloads]
        assert all(envelope["ok"] for envelope in got)

    def test_invalid_scalars_still_rejected_on_shm_path(self):
        from repro.service.pool import _pack_batch, _release_shm, execute_many_shm

        bad = _request(algorithm="NoSuchAlgorithm")
        packed = _pack_batch([bad])
        assert packed is not None
        shm, stripped = packed
        try:
            (envelope,) = execute_many_shm(shm.name, stripped, True)
        finally:
            _release_shm(shm)
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "unknown_algorithm"

    def test_lost_segment_degrades_to_error_envelopes(self):
        from repro.service.pool import execute_many_shm

        out = execute_many_shm("psm_repro_gone_missing", [{"tree": {"shm": 0}}] * 2)
        assert [e["error"]["code"] for e in out] == ["internal", "internal"]

    def test_worker_pool_round_trip_and_fallback(self):
        import asyncio

        from repro.service.pool import WorkerPool, execute_payload

        payloads = self._payloads()
        expected = [execute_payload(p, seed_rng=True) for p in payloads]

        async def drive():
            pool = WorkerPool(jobs=1, shm_min_nodes=0)
            assert pool.shm_transport
            try:
                pool.warm_up()
                assert await pool.run_batch(payloads) == expected
                assert pool.shm_batches == 1
                pool.shm_transport = False  # pickle fallback, same envelopes
                assert await pool.run_batch(payloads) == expected
                assert pool.shm_batches == 1
            finally:
                pool.shutdown()

        asyncio.run(drive())

    def test_small_batches_stay_on_the_pickle_path(self):
        """Below the node floor a segment cannot pay for itself."""
        from repro.service.pool import _pack_batch, _release_shm

        payloads = self._payloads()  # ~800 nodes total
        assert _pack_batch(payloads, min_nodes=100_000) is None
        packed = _pack_batch(payloads, min_nodes=0)
        assert packed is not None
        _release_shm(packed[0])

    def test_inline_mode_never_packs(self):
        from repro.service.pool import WorkerPool

        pool = WorkerPool(jobs=0, shm_transport=True)
        try:
            assert pool.shm_transport is False
        finally:
            pool.shutdown()

    def test_served_results_identical_with_and_without_shm(self, tmp_path):
        """End to end over the socket: worker processes, both transports."""
        from repro.service.pool import execute_payload

        payloads = self._payloads()
        expected = [execute_payload(p, seed_rng=True)["result"] for p in payloads]
        for shm in (True, False):
            config = ServerConfig(
                port=0, workers=1, shm_transport=shm, shm_min_nodes=0
            )
            with ServerThread(config) as server:
                client = ServiceClient(port=server.port)
                assert client.wait_ready(30)
                for payload, want in zip(payloads, expected):
                    envelope = client.submit(payload)
                    assert envelope["ok"] is True
                    assert envelope["result"] == want


class TestLargeRequestTreePath:
    def test_build_tree_switches_representation(self):
        from repro.core.arraytree import ArrayTree
        from repro.core.engine import AUTO_THRESHOLD
        from repro.core.tree import TaskTree
        from repro.datasets.synth import synth_instance
        from repro.service.pool import build_tree

        small = synth_instance(AUTO_THRESHOLD - 1, seed=3)
        large = synth_instance(AUTO_THRESHOLD, seed=3)
        assert isinstance(build_tree(small.parents, small.weights), TaskTree)
        assert isinstance(build_tree(large.parents, large.weights), ArrayTree)

    def test_build_tree_falls_back_beyond_int64(self):
        from repro.core.tree import TaskTree
        from repro.service.pool import build_tree

        n = 600
        parents = [-1] + [0] * (n - 1)
        weights = [2**70] * n  # object engine territory
        assert isinstance(build_tree(parents, weights), TaskTree)

    def test_large_solve_and_paging_match_object_path(self):
        from repro.analysis.bounds import memory_bounds
        from repro.core.tree import TaskTree
        from repro.datasets.synth import synth_instance
        from repro.service.pool import run_paging, run_solve
        from repro.service.protocol import PagingRequest, SolveRequest

        tree = synth_instance(700, seed=11)
        bounds = memory_bounds(tree)
        memory = bounds.mid
        solve = SolveRequest(
            parents=tree.parents,
            weights=tree.weights,
            memory=memory,
            algorithm="PostOrderMinIO",
        )
        got = run_solve(solve)
        want = run_solve(solve, tree=TaskTree(tree.parents, tree.weights))
        assert got == want

        paging = PagingRequest(
            parents=tree.parents,
            weights=tree.weights,
            memory=memory,
            algorithm="PostOrderMinIO",
            page_size=4,
            policies=("belady", "lru"),
            seed=0,
        )
        got = run_paging(paging)
        want = run_paging(paging, tree=TaskTree(tree.parents, tree.weights))
        assert got == want


class TestShmBudgetFallback:
    def test_over_budget_batches_take_the_pickle_path(self):
        """Trees the forest rebuild would reject must not be packed."""
        from repro.service.pool import _pack_batch

        big = 2**61
        payload = {
            "kind": "solve",
            "tree": {"parents": [-1, 0, 0], "weights": [big, big, big]},
            "memory": 1,
            "algorithm": "PostOrderMinIO",
        }
        assert _pack_batch([payload], min_nodes=0) is None
        huge = {
            "kind": "solve",
            "tree": {"parents": [-1, 0], "weights": [2**70, 2**70]},
            "memory": 1,
            "algorithm": "PostOrderMinIO",
        }
        assert _pack_batch([huge], min_nodes=0) is None  # beyond int64

    def test_over_budget_request_still_served(self):
        """End to end: the fallback must answer, not poison the batch."""
        import asyncio

        from repro.service.pool import WorkerPool, execute_payload

        big = 2**61
        payloads = [
            {
                "kind": "solve",
                "tree": {"parents": [-1, 0, 0], "weights": [big, big, big]},
                "memory": 3 * big,
                "algorithm": "PostOrderMinIO",
            },
            _request(),
        ]
        expected = [execute_payload(p, seed_rng=True) for p in payloads]

        async def drive():
            pool = WorkerPool(jobs=1, shm_min_nodes=0)
            try:
                pool.warm_up()
                assert await pool.run_batch(payloads) == expected
                assert pool.shm_batches == 0  # budget guard said pickle
            finally:
                pool.shutdown()

        asyncio.run(drive())
