"""Unit tests for the TaskTree data structure."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.tree import (
    TaskTree,
    TreeError,
    balanced_binary_tree,
    chain_tree,
    star_tree,
)

from .conftest import task_trees


class TestConstruction:
    def test_single_node(self):
        t = TaskTree([-1], [5])
        assert t.n == 1
        assert t.root == 0
        assert t.weights == (5,)
        assert t.children == ((),)

    def test_two_levels(self):
        t = TaskTree([-1, 0, 0], [1, 2, 3])
        assert t.root == 0
        assert set(t.children[0]) == {1, 2}
        assert t.parents == (-1, 0, 0)

    def test_children_preserve_insertion_order(self):
        t = TaskTree([2, 2, -1], [1, 1, 1])
        assert t.children[2] == (0, 1)

    def test_zero_weight_allowed(self):
        t = TaskTree([-1, 0], [0, 0])
        assert t.weights == (0, 0)

    def test_rejects_negative_weight(self):
        with pytest.raises(TreeError, match="negative"):
            TaskTree([-1], [-1])

    def test_rejects_non_integer_weight(self):
        with pytest.raises(TreeError, match="not an integer"):
            TaskTree([-1], [1.5])

    def test_accepts_integral_float(self):
        assert TaskTree([-1], [2.0]).weights == (2,)

    def test_rejects_bool_weight(self):
        with pytest.raises(TreeError, match="not an integer"):
            TaskTree([-1], [True])

    def test_rejects_empty(self):
        with pytest.raises(TreeError, match="at least one node"):
            TaskTree([], [])

    def test_rejects_two_roots(self):
        with pytest.raises(TreeError, match="two roots"):
            TaskTree([-1, -1], [1, 1])

    def test_rejects_no_root(self):
        with pytest.raises(TreeError, match="cycle|no root"):
            TaskTree([1, 0], [1, 1])

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(TreeError, match="out-of-range"):
            TaskTree([-1, 5], [1, 1])

    def test_rejects_cycle_with_root(self):
        # 0 is root; 1 and 2 form a 2-cycle disconnected from it.
        with pytest.raises(TreeError, match="connected|cycle"):
            TaskTree([-1, 2, 1], [1, 1, 1])

    def test_rejects_size_mismatch(self):
        with pytest.raises(TreeError, match="disagree"):
            TaskTree([-1, 0], [1])

    def test_from_edges(self):
        t = TaskTree.from_edges(3, [(1, 0), (2, 0)], [5, 6, 7])
        assert t.parents == (-1, 0, 0)

    def test_from_edges_rejects_double_parent(self):
        with pytest.raises(TreeError, match="two parents"):
            TaskTree.from_edges(3, [(1, 0), (1, 2)], [1, 1, 1])

    def test_dict_roundtrip(self):
        t = TaskTree([-1, 0, 1, 1], [4, 3, 2, 1])
        assert TaskTree.from_dict(t.to_dict()) == t

    def test_equality_and_hash(self):
        a = TaskTree([-1, 0], [1, 2])
        b = TaskTree([-1, 0], [1, 2])
        c = TaskTree([-1, 0], [1, 3])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a tree"

    def test_repr_mentions_size(self):
        assert "n=2" in repr(TaskTree([-1, 0], [1, 2]))


class TestDerivedQuantities:
    def test_wbar_leaf_is_weight(self):
        t = TaskTree([-1, 0], [1, 7])
        assert t.wbar[1] == 7

    def test_wbar_inner_max_of_inputs_and_output(self):
        # node 0 consumes 4+5=9 > its own 3
        t = TaskTree([-1, 0, 0], [3, 4, 5])
        assert t.wbar[0] == 9
        # now its own output dominates
        t = TaskTree([-1, 0, 0], [30, 4, 5])
        assert t.wbar[0] == 30

    def test_min_feasible_memory(self):
        t = TaskTree([-1, 0, 0], [3, 4, 5])
        assert t.min_feasible_memory() == 9

    def test_total_weight(self):
        assert TaskTree([-1, 0, 0], [3, 4, 5]).total_weight() == 12

    def test_subtree_size(self):
        t = TaskTree([-1, 0, 0, 1, 1], [1] * 5)
        assert t.subtree_size(t.root) == 5
        assert t.subtree_size(1) == 3
        assert t.subtree_size(2) == 1

    def test_depth_chain(self):
        assert chain_tree([1, 1, 1, 1]).depth() == 3

    def test_depth_star(self):
        assert star_tree(1, [1, 1, 1]).depth() == 1

    def test_depth_single(self):
        assert TaskTree([-1], [1]).depth() == 0

    def test_leaves(self):
        t = TaskTree([-1, 0, 0, 1], [1] * 4)
        assert sorted(t.leaves()) == [2, 3]

    def test_path_to_root(self):
        t = chain_tree([1, 2, 3])
        assert t.path_to_root(2) == [2, 1, 0]
        assert t.path_to_root(0) == [0]


class TestTraversalHelpers:
    def test_topological_order_root_first(self):
        t = TaskTree([1, 2, -1], [1, 1, 1])
        topo = t.topological_order()
        assert topo[0] == t.root
        pos = {v: i for i, v in enumerate(topo)}
        for v in range(t.n):
            if t.parents[v] != -1:
                assert pos[t.parents[v]] < pos[v]

    def test_bottom_up_children_first(self):
        t = TaskTree([-1, 0, 0, 1], [1] * 4)
        seen = set()
        for v in t.bottom_up():
            for c in t.children[v]:
                assert c in seen
            seen.add(v)

    def test_subtree_nodes(self):
        t = TaskTree([-1, 0, 0, 1, 1], [1] * 5)
        assert set(t.subtree_nodes(1)) == {1, 3, 4}
        assert t.subtree_nodes(1)[0] == 1

    def test_postorder_default(self):
        t = TaskTree([-1, 0, 0], [1, 1, 1])
        po = t.postorder()
        assert po[-1] == 0
        assert sorted(po) == [0, 1, 2]

    def test_postorder_respects_child_order(self):
        t = TaskTree([-1, 0, 0], [1, 1, 1])
        assert t.postorder(lambda v: (2, 1) if v == 0 else ()) == [2, 1, 0]

    def test_postorder_deep_chain_no_recursion_error(self):
        n = 50_000
        t = TaskTree([i - 1 for i in range(n)], [1] * n)
        po = t.postorder()
        assert po[0] == n - 1 and po[-1] == 0

    def test_relabeled_isomorphic(self):
        t = TaskTree([-1, 0, 0], [5, 6, 7])
        r = t.relabeled([2, 0, 1])  # new 0 = old 2
        assert r.weights == (7, 5, 6)
        assert r.root == 1
        assert r.min_feasible_memory() == t.min_feasible_memory()

    def test_relabeled_rejects_non_permutation(self):
        with pytest.raises(TreeError, match="permutation"):
            TaskTree([-1, 0], [1, 1]).relabeled([0, 0])

    def test_with_weights(self):
        t = TaskTree([-1, 0], [1, 2]).with_weights([9, 8])
        assert t.weights == (9, 8)

    def test_len(self):
        assert len(TaskTree([-1, 0], [1, 1])) == 2


class TestNamedConstructors:
    def test_chain_tree_orientation(self):
        t = chain_tree([10, 20, 30])
        assert t.root == 0
        assert t.weights[t.leaves()[0]] == 30

    def test_star_tree(self):
        t = star_tree(5, [1, 2, 3])
        assert t.root == 0
        assert len(t.children[0]) == 3
        assert t.wbar[0] == 6

    def test_balanced_binary_tree_size(self):
        t = balanced_binary_tree(3)
        assert t.n == 15
        assert all(len(c) in (0, 2) for c in t.children)

    def test_balanced_binary_tree_weight_function(self):
        t = balanced_binary_tree(1, weight=lambda i: i + 1)
        assert t.weights == (1, 2, 3)


class TestPropertyBased:
    @given(task_trees(max_nodes=12))
    def test_roundtrip_and_invariants(self, tree: TaskTree):
        assert TaskTree.from_dict(tree.to_dict()) == tree
        assert len(tree.topological_order()) == tree.n
        assert tree.subtree_size(tree.root) == tree.n
        assert sum(len(c) for c in tree.children) == tree.n - 1
        assert tree.min_feasible_memory() == max(tree.wbar)

    @given(task_trees(max_nodes=12))
    def test_postorder_is_topological(self, tree: TaskTree):
        po = tree.postorder()
        pos = {v: i for i, v in enumerate(po)}
        assert sorted(po) == list(range(tree.n))
        for v in range(tree.n):
            if tree.parents[v] != -1:
                assert pos[v] < pos[tree.parents[v]]

    @given(task_trees(max_nodes=10))
    def test_wbar_definition(self, tree: TaskTree):
        for v in range(tree.n):
            inputs = sum(tree.weights[c] for c in tree.children[v])
            assert tree.wbar[v] == max(tree.weights[v], inputs)
