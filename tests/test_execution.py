"""Tests for the timed out-of-core execution engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.execution import MachineModel, execute_traversal
from repro.core.simulator import fif_traversal
from repro.core.traversal import Traversal
from repro.core.tree import TaskTree, chain_tree

from .conftest import trees_with_memory


def constant_compute(seconds: float):
    return lambda v, tree: seconds


def io_tree() -> tuple[TaskTree, Traversal, int]:
    """A 5-node tree whose FiF traversal at M=6 writes 2 units of node 1."""
    tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
    traversal = fif_traversal(tree, [3, 1, 4, 2, 0], 6)
    assert traversal.io_volume == 2
    return tree, traversal, 6


class TestBlockingDiscipline:
    def test_no_io_makespan_is_pure_compute(self):
        tree = chain_tree([1, 1, 1])
        traversal = fif_traversal(tree, [2, 1, 0], 10)
        machine = MachineModel(compute=constant_compute(2.0))
        report = execute_traversal(tree, traversal, machine)
        assert report.makespan == pytest.approx(6.0)
        assert report.stall_time == 0.0
        assert report.io_volume == 0
        assert report.compute_utilisation == pytest.approx(1.0)

    def test_io_adds_write_and_read_time(self):
        tree, traversal, _ = io_tree()
        machine = MachineModel(
            bandwidth=1.0, latency=0.0, compute=constant_compute(1.0)
        )
        report = execute_traversal(tree, traversal, machine)
        # 5 tasks * 1s + write 2 units + read 2 units at bw 1.
        assert report.makespan == pytest.approx(5.0 + 2.0 + 2.0)
        assert report.write_time == pytest.approx(2.0)
        assert report.read_time == pytest.approx(2.0)
        assert report.stall_time == pytest.approx(4.0)

    def test_latency_charged_per_operation(self):
        tree, traversal, _ = io_tree()
        machine = MachineModel(
            bandwidth=1e12, latency=0.5, compute=constant_compute(0.0)
        )
        report = execute_traversal(tree, traversal, machine)
        # one write + one read -> two latencies
        assert report.makespan == pytest.approx(1.0, abs=1e-6)

    def test_bandwidth_scaling(self):
        tree, traversal, _ = io_tree()
        slow = execute_traversal(
            tree, traversal, MachineModel(bandwidth=1.0, latency=0.0)
        )
        fast = execute_traversal(
            tree, traversal, MachineModel(bandwidth=2.0, latency=0.0)
        )
        assert fast.read_time == pytest.approx(slow.read_time / 2)
        assert fast.makespan < slow.makespan

    def test_events_cover_schedule(self):
        tree, traversal, _ = io_tree()
        report = execute_traversal(tree, traversal, MachineModel())
        assert [e.node for e in report.events] == list(traversal.schedule)
        assert all(e.end >= e.start for e in report.events)


class TestOverlappedDiscipline:
    def test_writes_hidden_behind_compute(self):
        tree, traversal, _ = io_tree()
        machine = MachineModel(
            bandwidth=10.0,
            latency=0.0,
            compute=constant_compute(1.0),
            discipline="overlapped",
        )
        report = execute_traversal(tree, traversal, machine)
        blocking = execute_traversal(
            tree,
            traversal,
            MachineModel(
                bandwidth=10.0, latency=0.0, compute=constant_compute(1.0)
            ),
        )
        assert report.makespan <= blocking.makespan

    def test_read_still_blocks(self):
        tree, traversal, _ = io_tree()
        machine = MachineModel(
            bandwidth=1.0,
            latency=0.0,
            compute=constant_compute(0.0),
            discipline="overlapped",
        )
        report = execute_traversal(tree, traversal, machine)
        # With zero compute there is nothing to hide behind: the read must
        # wait for the queued write (2s) then read back (2s).
        assert report.makespan == pytest.approx(4.0)
        assert report.stall_time == pytest.approx(4.0)

    def test_rejects_unknown_discipline(self):
        tree, traversal, _ = io_tree()
        with pytest.raises(ValueError, match="discipline"):
            execute_traversal(
                tree, traversal, MachineModel(discipline="quantum")
            )


class TestProperties:
    @given(trees_with_memory())
    @settings(max_examples=40)
    def test_overlapped_never_slower_than_blocking(self, tree_memory):
        tree, memory = tree_memory
        traversal = fif_traversal(
            tree, list(reversed(tree.topological_order())), memory
        )
        kwargs = dict(bandwidth=3.0, latency=0.01, compute=constant_compute(0.5))
        blocking = execute_traversal(tree, traversal, MachineModel(**kwargs))
        overlapped = execute_traversal(
            tree, traversal, MachineModel(discipline="overlapped", **kwargs)
        )
        assert overlapped.makespan <= blocking.makespan + 1e-9

    @given(trees_with_memory())
    @settings(max_examples=40)
    def test_makespan_at_least_compute(self, tree_memory):
        tree, memory = tree_memory
        traversal = fif_traversal(
            tree, list(reversed(tree.topological_order())), memory
        )
        report = execute_traversal(tree, traversal, MachineModel())
        assert report.makespan >= report.compute_time - 1e-9
