"""Tests for the parallel out-of-core simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.algorithms.liu import LiuSolver
from repro.core.simulator import fif_io_volume
from repro.core.tree import TaskTree, chain_tree, star_tree
from repro.parallel import (
    priority_from_schedule,
    priority_from_strategy,
    simulate_parallel,
)
from repro.parallel.strategies import critical_path_priority

from .conftest import trees_with_memory


class TestSequentialReduction:
    """p=1 with priorities from sigma must reproduce the sequential model."""

    @given(trees_with_memory())
    @settings(max_examples=60)
    def test_one_proc_matches_fif(self, tree_memory):
        tree, memory = tree_memory
        schedule = LiuSolver(tree).schedule()
        priority = priority_from_schedule(schedule)
        report = simulate_parallel(tree, memory, 1, priority)
        assert report.order == schedule
        assert report.io_volume == fif_io_volume(tree, schedule, memory)

    @given(trees_with_memory())
    @settings(max_examples=40)
    def test_one_proc_makespan_is_total_duration_plus_nothing(self, tree_memory):
        tree, memory = tree_memory
        schedule = LiuSolver(tree).schedule()
        report = simulate_parallel(
            tree, memory, 1, priority_from_schedule(schedule)
        )
        assert report.makespan == pytest.approx(sum(tree.wbar))
        assert report.utilisation() == pytest.approx(1.0)


class TestParallelBehaviour:
    def test_star_uses_all_processors(self):
        tree = star_tree(1, [1] * 6)
        priority = priority_from_schedule(tree.postorder())
        report = simulate_parallel(tree, 100, 3, priority)
        procs = {e.processor for e in report.events}
        assert len(procs) == 3
        # 6 unit leaves on 3 procs = 2 rounds, then the root (wbar 6).
        assert report.makespan == pytest.approx(2.0 + 6.0)

    def test_chain_gains_nothing_from_processors(self):
        tree = chain_tree([2, 3, 4])
        priority = priority_from_schedule(tree.postorder())
        solo = simulate_parallel(tree, 100, 1, priority)
        quad = simulate_parallel(tree, 100, 4, priority)
        assert solo.makespan == pytest.approx(quad.makespan)

    def test_more_processors_never_hurt_here(self):
        tree = star_tree(2, [3, 3, 3, 3])
        priority = priority_from_schedule(tree.postorder())
        m1 = simulate_parallel(tree, 100, 1, priority).makespan
        m2 = simulate_parallel(tree, 100, 2, priority).makespan
        m4 = simulate_parallel(tree, 100, 4, priority).makespan
        assert m4 <= m2 <= m1

    def test_memory_pressure_forces_io_in_parallel(self):
        # Two independent 6-unit leaves + root; M=8 cannot hold both
        # outputs with... with p=2 both run together: reserved 6+6 > 8?
        # The engine must serialise or evict to respect M.
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
        priority = priority_from_schedule([3, 4, 1, 2, 0])
        report = simulate_parallel(tree, 8, 2, priority)
        assert report.peak_memory <= 8
        assert sorted(e.node for e in report.events) == list(range(5))

    def test_peak_memory_never_exceeds_bound(self):
        tree = star_tree(3, [4, 4, 4])
        priority = priority_from_schedule(tree.postorder())
        report = simulate_parallel(tree, 12, 3, priority)
        assert report.peak_memory <= 12

    def test_custom_durations(self):
        tree = chain_tree([1, 1])
        report = simulate_parallel(
            tree, 10, 1, [1, 0], durations=[5.0, 2.5]
        )
        assert report.makespan == pytest.approx(7.5)

    def test_bandwidth_charges_reads(self):
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
        priority = priority_from_schedule([3, 1, 4, 2, 0])
        fast = simulate_parallel(tree, 6, 1, priority, bandwidth=0.0)
        slow = simulate_parallel(tree, 6, 1, priority, bandwidth=1.0)
        assert slow.io_volume == fast.io_volume > 0
        assert slow.makespan > fast.makespan


class TestValidationAndErrors:
    def test_rejects_zero_processors(self):
        tree = chain_tree([1, 1])
        with pytest.raises(ValueError, match="processor"):
            simulate_parallel(tree, 10, 0, [1, 0])

    def test_rejects_low_memory(self):
        tree = star_tree(1, [4, 4])
        with pytest.raises(ValueError, match="feasible"):
            simulate_parallel(tree, 7, 1, [0, 1, 2])

    def test_rejects_misaligned_priority(self):
        tree = chain_tree([1, 1])
        with pytest.raises(ValueError, match="aligned"):
            simulate_parallel(tree, 10, 1, [0])

    @given(trees_with_memory(), st.integers(1, 4))
    @settings(max_examples=50)
    def test_execution_always_complete_and_ordered(self, tree_memory, procs):
        tree, memory = tree_memory
        priority = priority_from_schedule(LiuSolver(tree).schedule())
        report = simulate_parallel(tree, memory, procs, priority)
        started = {e.node: e.start for e in report.events}
        ended = {e.node: e.end for e in report.events}
        assert len(started) == tree.n
        for v in range(tree.n):
            p = tree.parents[v]
            if p != -1:
                assert ended[v] <= started[p] + 1e-9
        assert report.peak_memory <= memory


class TestStrategies:
    def test_priority_from_strategy(self):
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
        rank = priority_from_strategy(tree, 8, "RecExpand")
        assert sorted(rank) == list(range(tree.n))

    def test_critical_path_priority_prefers_deep_chains(self):
        # A deep chain vs a shallow leaf: the chain's leaf ranks first.
        tree = TaskTree([-1, 0, 1, 2, 0], [1, 1, 1, 1, 1])
        rank = critical_path_priority(tree)
        assert rank[3] < rank[4]

    def test_critical_path_respects_custom_durations(self):
        tree = star_tree(1, [1, 1])
        rank = critical_path_priority(tree, durations=[0.0, 1.0, 5.0])
        assert rank[2] < rank[1]
