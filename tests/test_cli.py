"""Smoke tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets.instances import figure_2b


@pytest.fixture
def tree_file(tmp_path):
    path = tmp_path / "tree.json"
    path.write_text(json.dumps(figure_2b().tree.to_dict()))
    return str(path)


class TestInfo:
    def test_prints_bounds(self, tree_file, capsys):
        assert main(["info", "--tree", tree_file]) == 0
        out = capsys.readouterr().out
        assert "LB (max wbar)   : 6" in out
        assert "Peak_incore     : 8" in out


class TestSolve:
    def test_solve_reports_io(self, tree_file, capsys):
        assert (
            main(
                [
                    "solve",
                    "--tree",
                    tree_file,
                    "--memory",
                    "6",
                    "--algorithm",
                    "FullRecExpand",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "io volume   : 3" in out

    def test_show_schedule(self, tree_file, capsys):
        main(
            [
                "solve",
                "--tree",
                tree_file,
                "--memory",
                "7",
                "--algorithm",
                "PostOrderMinIO",
                "--show-schedule",
            ]
        )
        out = capsys.readouterr().out
        assert "schedule    :" in out

    def test_unknown_algorithm_rejected(self, tree_file):
        with pytest.raises(SystemExit):
            main(["solve", "--tree", tree_file, "--memory", "6", "--algorithm", "Nope"])

    def test_offline_solve_is_not_wire_capped(self, tmp_path, capsys):
        """MAX_NODES protects the service; offline solve must take huge trees."""
        from repro.api import MAX_NODES, ProtocolError, parse_request

        n = MAX_NODES + 1
        tree = {"parents": [-1] + list(range(n - 1)), "weights": [1] * n}
        path = tmp_path / "chain.json"
        path.write_text(json.dumps(tree))
        assert (
            main(
                [
                    "solve", "--tree", str(path), "--memory", "4",
                    "--algorithm", "PostOrderMinIO",
                ]
            )
            == 0
        )
        assert "io volume" in capsys.readouterr().out
        # ... while the wire path keeps rejecting the same tree
        with pytest.raises(ProtocolError) as err:
            parse_request({"kind": "solve", "tree": tree, "memory": 4})
        assert err.value.code == "payload_too_large"

    def test_offline_solve_takes_beyond_int64_weights(self, tmp_path, capsys):
        """Huge weights (object engine) and >10^15 memory bounds still solve."""
        big = 2**70
        path = tmp_path / "huge.json"
        path.write_text(
            json.dumps({"parents": [-1, 0, 0], "weights": [big, big, big]})
        )
        assert (
            main(
                [
                    "solve", "--tree", str(path), "--memory", str(3 * big),
                    "--algorithm", "PostOrderMinIO",
                ]
            )
            == 0
        )
        assert "io volume   : 0" in capsys.readouterr().out


class TestInstance:
    def test_figure_2b(self, capsys):
        assert main(["instance", "--name", "figure_2b"]) == 0
        out = capsys.readouterr().out
        assert "figure_2b" in out
        assert "paper witness" in out

    def test_figure_2c_with_k(self, capsys):
        assert main(["instance", "--name", "figure_2c", "--k", "2"]) == 0
        assert "k=2" in capsys.readouterr().out

    def test_figure_2a_with_extensions(self, capsys):
        assert main(["instance", "--name", "figure_2a", "--k", "1"]) == 0
        assert "ext=1" in capsys.readouterr().out

    def test_single_algorithm_filter(self, capsys):
        main(["instance", "--name", "figure_7", "--algorithm", "PostOrderMinIO"])
        out = capsys.readouterr().out
        assert "PostOrderMinIO" in out
        assert "OptMinMem" not in out


class TestFigure:
    def test_tiny_figure(self, capsys, monkeypatch):
        assert main(["figure", "--id", "fig4", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "RecExpand" in out
        assert "overhead" in out

    def test_csv_export(self, tmp_path, capsys):
        csv = tmp_path / "out.csv"
        assert main(["figure", "--id", "fig10", "--scale", "tiny", "--csv", str(csv)]) == 0
        assert csv.read_text().startswith("threshold,")


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "RecExpand" in out


class TestPaging:
    def test_policy_table(self, tree_file, capsys):
        assert main(["paging", "--tree", tree_file, "--memory", "6"]) == 0
        out = capsys.readouterr().out
        assert "belady" in out and "pessimal" in out

    def test_page_size_and_policy_filter(self, tree_file, capsys):
        assert (
            main(
                [
                    "paging", "--tree", tree_file, "--memory", "8",
                    "--page-size", "2", "--policy", "belady",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "page size 2" in out
        assert "lru" not in out


class TestExact:
    def test_exact_reports_optimum_and_gaps(self, tree_file, capsys):
        assert main(["exact", "--tree", tree_file, "--memory", "6"]) == 0
        out = capsys.readouterr().out
        assert "io=3 [optimal]" in out
        assert "gap" in out


class TestParallel:
    def test_plain_parallel(self, tree_file, capsys):
        assert (
            main(["parallel", "--tree", tree_file, "--memory", "8", "--processors", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "makespan" in out and "utilisation" in out

    def test_windowed(self, tree_file, capsys):
        assert (
            main(
                [
                    "parallel", "--tree", tree_file, "--memory", "8",
                    "--processors", "2", "--window", "1",
                ]
            )
            == 0
        )
        assert "window : 1" in capsys.readouterr().out


class TestDraw:
    def test_plain_tree(self, tree_file, tmp_path, capsys):
        out_svg = tmp_path / "tree.svg"
        assert main(["draw", "--tree", tree_file, "--out", str(out_svg)]) == 0
        assert out_svg.read_text().startswith("<svg")

    def test_annotated_tree(self, tree_file, tmp_path):
        out_svg = tmp_path / "tree.svg"
        assert (
            main(
                [
                    "draw", "--tree", tree_file, "--out", str(out_svg),
                    "--algorithm", "RecExpand", "--memory", "6",
                    "--title", "fig2b",
                ]
            )
            == 0
        )
        svg = out_svg.read_text()
        assert "fig2b" in svg and "#1" in svg


class TestSvgFigure:
    def test_figure_svg_export(self, tmp_path, capsys):
        svg = tmp_path / "fig.svg"
        assert (
            main(["figure", "--id", "fig10", "--scale", "tiny", "--svg", str(svg)]) == 0
        )
        assert svg.read_text().startswith("<svg")


class TestReport:
    def test_tiny_report(self, tmp_path, capsys):
        assert main(["report", "--scale", "tiny", "--outdir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "counterexamples" in out
        report = (tmp_path / "experiments_tiny.json").read_text()
        assert '"fig4"' in report


class TestGantt:
    def test_parallel_gantt_export(self, tree_file, tmp_path):
        out_svg = tmp_path / "gantt.svg"
        assert (
            main(
                [
                    "parallel", "--tree", tree_file, "--memory", "8",
                    "--processors", "2", "--gantt", str(out_svg),
                ]
            )
            == 0
        )
        assert out_svg.read_text().startswith("<svg")


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["--version"])
        assert exit_info.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out


class TestExitCodes:
    """Bad arguments exit 2 (never a traceback), for every subcommand."""

    def test_missing_tree_file(self, capsys):
        assert main(["info", "--tree", "/no/such/tree.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_tree_json(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["solve", "--tree", str(path), "--memory", "6"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_tree_structure(self, tmp_path, capsys):
        path = tmp_path / "cyclic.json"
        path.write_text(json.dumps({"parents": [1, 0], "weights": [1, 1]}))
        assert main(["exact", "--tree", str(path), "--memory", "6"]) == 2
        assert "invalid tree" in capsys.readouterr().err

    def test_unknown_instance_name_is_parse_error(self):
        with pytest.raises(SystemExit) as exit_info:
            main(["instance", "--name", "figure_999"])
        assert exit_info.value.code == 2

    def test_submit_to_dead_server_exits_one(self, tree_file, capsys):
        # nothing listens on port 1; the transport failure must exit 1
        assert (
            main(
                [
                    "submit", "--host", "127.0.0.1", "--port", "1",
                    "--tree", tree_file, "--memory", "6",
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err

    def test_cache_dir_collision_still_exits_two(self, tmp_path, capsys):
        collision = tmp_path / "not-a-dir"
        collision.write_text("occupied")
        assert (
            main(
                [
                    "report", "--scale", "tiny", "--outdir", str(tmp_path),
                    "--cache-dir", str(collision),
                ]
            )
            == 2
        )


class TestLazyAlgorithmChoices:
    def test_strategies_registered_after_import_are_accepted(self):
        from repro.cli import build_parser
        from repro.experiments.registry import ALGORITHMS, register_algorithm

        name = "TestLateRegistered"
        register_algorithm(name, lambda tree, memory: None)
        try:
            args = build_parser().parse_args(
                ["solve", "--tree", "x.json", "--memory", "1", "--algorithm", name]
            )
            assert args.algorithm == name
        finally:
            ALGORITHMS.pop(name, None)
