"""Tests for activation-window parallel scheduling.

The two reductions pin the semantics: window 1 *is* the sequential
traversal (same order, same I/O as the FiF simulator), window n *is*
plain priority-list scheduling.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.liu import LiuSolver
from repro.core.simulator import simulate_fif
from repro.parallel import (
    priority_from_schedule,
    simulate_activation,
    simulate_parallel,
    window_sweep,
)

from .conftest import trees_with_memory


class TestReductions:
    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    @settings(max_examples=40)
    def test_window_one_single_proc_is_sequential(self, tm):
        tree, memory = tm
        order = LiuSolver(tree).schedule()
        report = simulate_activation(tree, memory, 1, order, window=1)
        assert report.order == list(order)
        assert report.io_volume == simulate_fif(tree, order, memory).io_volume

    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    @settings(max_examples=40)
    def test_window_n_equals_plain_priority_list(self, tm):
        tree, memory = tm
        order = LiuSolver(tree).schedule()
        gated = simulate_activation(tree, memory, 3, order, window=tree.n)
        plain = simulate_parallel(
            tree, memory, 3, priority_from_schedule(order)
        )
        assert gated.order == plain.order
        assert gated.io_volume == plain.io_volume
        assert gated.makespan == plain.makespan

    @given(tm=trees_with_memory(max_nodes=8, max_weight=9))
    @settings(max_examples=30)
    def test_window_one_many_procs_still_sequential_order(self, tm):
        """With window 1 extra processors cannot reorder execution starts."""
        tree, memory = tm
        order = LiuSolver(tree).schedule()
        report = simulate_activation(tree, memory, 4, order, window=1)
        assert report.order == list(order)


class TestSweep:
    def _instance(self):
        from repro.datasets.synth import synth_instance
        from repro.analysis.bounds import memory_bounds

        for seed in range(5, 60):
            tree = synth_instance(40, seed=seed)
            bounds = memory_bounds(tree)
            if bounds.has_io_regime:
                return tree, bounds.mid
        raise AssertionError("no instance found")

    def test_sweep_covers_all_windows(self):
        tree, memory = self._instance()
        order = LiuSolver(tree).schedule()
        reports = window_sweep(tree, memory, 2, order, windows=(1, 4, tree.n))
        assert set(reports) == {1, 4, tree.n}

    def test_wider_window_never_slows_down_unit_durations(self):
        """More admissible tasks == more parallelism on this workload."""
        tree, memory = self._instance()
        order = LiuSolver(tree).schedule()
        reports = window_sweep(tree, memory, 4, order, windows=(1, tree.n))
        assert reports[tree.n].makespan <= reports[1].makespan + 1e-9

    def test_window_one_io_matches_fif_on_one_processor(self):
        # The exact sequential reduction needs p=1: with more processors
        # window 1 still starts tasks in sigma-order, but overlapping
        # executions reserve memory concurrently and can change the I/O.
        tree, memory = self._instance()
        order = LiuSolver(tree).schedule()
        reports = window_sweep(tree, memory, 1, order, windows=(1, tree.n))
        assert reports[1].io_volume == simulate_fif(tree, order, memory).io_volume

    def test_all_reports_complete_every_task(self):
        tree, memory = self._instance()
        order = LiuSolver(tree).schedule()
        for report in window_sweep(
            tree, memory, 3, order, windows=(1, 2, 8)
        ).values():
            assert sorted(report.order) == list(range(tree.n))


class TestValidation:
    def test_window_zero_rejected(self):
        from repro.core.tree import chain_tree

        tree = chain_tree([2, 3])
        with pytest.raises(ValueError, match="window"):
            simulate_activation(tree, 5, 1, [1, 0], window=0)

    def test_bad_order_rejected(self):
        from repro.core.tree import chain_tree

        tree = chain_tree([2, 3])
        with pytest.raises(ValueError, match="permutation"):
            simulate_activation(tree, 5, 1, [0, 0], window=1)
