"""Tests for elimination trees and multifrontal weights.

The reference oracle is a dense symbolic Cholesky factorisation written
directly from the definition (O(n^3), fine for test sizes): it provides
ground truth for both the etree parents and the factor column counts.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.tree import TaskTree
from repro.datasets.elimination import (
    elimination_tree,
    etree_task_tree,
    factor_column_counts,
    fundamental_supernodes,
    multifrontal_weights,
    supernodal_task_tree,
)
from repro.datasets.matrices import (
    grid_laplacian_2d,
    permute_symmetric,
    random_symmetric_pattern,
)


def dense_symbolic_cholesky(a: sp.spmatrix) -> np.ndarray:
    """Reference fill computation: boolean up-looking factorisation."""
    n = a.shape[0]
    pattern = (sp.csr_matrix(a) + sp.csr_matrix(a).T).toarray() != 0
    lower = np.tril(pattern)
    np.fill_diagonal(lower, True)
    for j in range(n):
        for k in range(j):
            if lower[j, k]:  # L[j,k] != 0 -> column k updates column j
                lower[j:, j] |= lower[j:, k] & lower[j, k]
    return lower


def reference_etree(a: sp.spmatrix) -> np.ndarray:
    lower = dense_symbolic_cholesky(a)
    n = lower.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        below = np.flatnonzero(lower[j + 1 :, j])
        if len(below):
            parent[j] = j + 1 + below[0]
    return parent


def reference_counts(a: sp.spmatrix) -> np.ndarray:
    return dense_symbolic_cholesky(a).sum(axis=0)


class TestEliminationTree:
    def test_tridiagonal_is_a_chain(self):
        n = 8
        a = sp.diags([np.ones(n - 1), np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        parent = elimination_tree(sp.csr_matrix(a))
        assert list(parent) == [1, 2, 3, 4, 5, 6, 7, -1]

    def test_diagonal_matrix_is_forest(self):
        a = sp.eye(5, format="csr")
        parent = elimination_tree(a)
        assert list(parent) == [-1] * 5

    def test_arrow_matrix(self):
        # Arrow pointing to the last column: every column's parent is n-1.
        n = 6
        a = sp.lil_matrix((n, n))
        a.setdiag(1)
        a[n - 1, :] = 1
        a[:, n - 1] = 1
        parent = elimination_tree(sp.csr_matrix(a))
        assert list(parent[:-1]) == [n - 1] * (n - 1)
        assert parent[n - 1] == -1

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_dense_reference_random(self, seed):
        a = random_symmetric_pattern(25, 3.0, np.random.default_rng(seed))
        assert list(elimination_tree(a)) == list(reference_etree(a))

    def test_matches_dense_reference_grid(self):
        a = grid_laplacian_2d(5, 4)
        assert list(elimination_tree(a)) == list(reference_etree(a))

    def test_permutation_changes_tree(self):
        a = grid_laplacian_2d(4, 4)
        perm = np.random.default_rng(7).permutation(16)
        b = permute_symmetric(a, perm)
        assert list(elimination_tree(a)) != list(elimination_tree(b))


class TestColumnCounts:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_dense_reference_random(self, seed):
        a = random_symmetric_pattern(25, 3.0, np.random.default_rng(seed))
        parent = elimination_tree(a)
        assert list(factor_column_counts(a, parent)) == list(reference_counts(a))

    def test_matches_dense_reference_grid(self):
        a = grid_laplacian_2d(4, 5)
        parent = elimination_tree(a)
        assert list(factor_column_counts(a, parent)) == list(reference_counts(a))

    def test_tridiagonal_counts(self):
        n = 6
        a = sp.csr_matrix(
            sp.diags([np.ones(n - 1), np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        )
        counts = factor_column_counts(a, elimination_tree(a))
        assert list(counts) == [2, 2, 2, 2, 2, 1]

    def test_counts_at_least_one(self):
        a = sp.eye(4, format="csr")
        counts = factor_column_counts(a, elimination_tree(a))
        assert list(counts) == [1, 1, 1, 1]


class TestWeights:
    def test_contribution_block_square(self):
        assert list(multifrontal_weights(np.array([4, 3, 1]))) == [9, 4, 1]

    def test_clamped_to_one(self):
        assert list(multifrontal_weights(np.array([1]))) == [1]


class TestTaskTrees:
    def test_etree_task_tree_single_root(self):
        tree = etree_task_tree(grid_laplacian_2d(4, 4))
        assert isinstance(tree, TaskTree)
        assert tree.n == 16

    def test_forest_gets_virtual_root(self):
        tree = etree_task_tree(sp.eye(4, format="csr"))
        assert tree.n == 5
        assert len(tree.children[tree.root]) == 4
        assert tree.weights[tree.root] == 1

    def test_weights_are_contribution_blocks(self):
        a = grid_laplacian_2d(3, 3)
        tree = etree_task_tree(a)
        counts = factor_column_counts(a, elimination_tree(a))
        expected = multifrontal_weights(counts)
        assert list(tree.weights) == list(expected)


class TestSupernodes:
    def test_dense_block_collapses_to_single_supernode(self):
        n = 6
        a = sp.csr_matrix(np.ones((n, n)))
        parent = elimination_tree(a)
        counts = factor_column_counts(a, parent)
        snode = fundamental_supernodes(parent, counts)
        assert len(set(snode.tolist())) == 1

    def test_tridiagonal_supernodes_are_singletons_but_last_pair(self):
        # Column j+1's pattern {j+1, j+2} is not column j's minus the pivot,
        # so only the final two columns amalgamate.
        n = 7
        a = sp.csr_matrix(
            sp.diags([np.ones(n - 1), np.ones(n), np.ones(n - 1)], [-1, 0, 1])
        )
        parent = elimination_tree(a)
        counts = factor_column_counts(a, parent)
        snode = fundamental_supernodes(parent, counts)
        assert list(snode) == [0, 1, 2, 3, 4, 5, 5]

    def test_snode_ids_are_contiguous_ranges(self):
        a = grid_laplacian_2d(5, 5)
        parent = elimination_tree(a)
        counts = factor_column_counts(a, parent)
        snode = fundamental_supernodes(parent, counts)
        # non-decreasing and increments by at most 1
        diffs = np.diff(snode)
        assert np.all((diffs == 0) | (diffs == 1))

    def test_supernodal_tree_smaller(self):
        a = grid_laplacian_2d(6, 6)
        nodal = etree_task_tree(a)
        super_ = supernodal_task_tree(a)
        assert super_.n <= nodal.n

    def test_supernodal_tree_valid(self):
        tree = supernodal_task_tree(grid_laplacian_2d(5, 7))
        assert tree.n >= 1
        assert all(w >= 1 for w in tree.weights)

    def test_diagonal_supernodal_forest(self):
        tree = supernodal_task_tree(sp.eye(3, format="csr"))
        assert tree.n == 4  # 3 singleton supernodes + virtual root
