"""Property tests for the flat :class:`ArrayTree` representation.

Three contracts, per the kernel-layer design:

* ``TaskTree ↔ ArrayTree`` round-trips exactly (both directions, every
  derived quantity);
* invalid descriptions are rejected with :class:`TreeError` exactly when
  ``TaskTree`` rejects them;
* zero-weight nodes (produced by node expansion, Theorem 2) survive the
  flat layout untouched.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.arraytree import ArrayTree, as_array_tree
from repro.core.engine import (
    AUTO_THRESHOLD,
    default_engine,
    engine_scope,
    resolve_engine,
    set_default_engine,
)
from repro.core.tree import TaskTree, TreeError, chain_tree, star_tree

from .conftest import task_trees


def assert_same_structure(tree: TaskTree, at: ArrayTree) -> None:
    assert at.n == tree.n
    assert at.root == tree.root
    assert list(at.parents) == list(tree.parents)
    assert list(at.weights) == list(tree.weights)
    assert list(at.wbar) == list(tree.wbar)
    assert [list(c) for c in at.children] == [list(c) for c in tree.children]
    assert list(at.topological_order()) == list(tree.topological_order())
    assert list(at.bottom_up()) == list(tree.bottom_up())
    assert at.leaves() == tree.leaves()
    assert at.depth() == tree.depth()
    assert at.postorder() == tree.postorder()
    assert at.min_feasible_memory() == tree.min_feasible_memory()
    assert at.total_weight() == tree.total_weight()
    assert len(at) == len(tree)


class TestRoundTrip:
    @given(task_trees(max_nodes=24, min_weight=0, max_weight=30))
    @settings(max_examples=80)
    def test_task_tree_round_trip(self, tree):
        at = ArrayTree.from_task_tree(tree)
        assert_same_structure(tree, at)
        back = at.to_task_tree()
        assert back == tree
        assert at == tree  # cross-representation equality
        assert hash(at) == hash(ArrayTree.from_task_tree(back))

    @given(task_trees(max_nodes=24, min_weight=0, max_weight=30))
    @settings(max_examples=80)
    def test_direct_construction_matches_conversion(self, tree):
        direct = ArrayTree(list(tree.parents), list(tree.weights))
        converted = ArrayTree.from_task_tree(tree)
        assert direct == converted
        assert_same_structure(tree, direct)

    def test_permuted_labels(self):
        # Root far from node 0, parents array non-monotone.
        tree = TaskTree([3, 0, 0, -1, 2, 2], [5, 1, 4, 2, 3, 6])
        assert_same_structure(tree, ArrayTree.from_task_tree(tree))
        assert_same_structure(tree, ArrayTree(tree.parents, tree.weights))

    def test_dict_round_trip(self):
        tree = star_tree(2, [4, 0, 3])
        at = ArrayTree.from_dict(tree.to_dict())
        assert at.to_dict() == tree.to_dict()

    def test_numpy_input_accepted(self):
        parents = np.array([-1, 0, 0, 1], dtype=np.int64)
        weights = np.array([3, 1, 4, 1], dtype=np.int64)
        at = ArrayTree(parents, weights)
        assert at == TaskTree(parents.tolist(), weights.tolist())

    def test_as_array_tree_passthrough_and_rejection(self):
        tree = chain_tree([3, 5, 2])
        at = as_array_tree(tree)
        assert as_array_tree(at) is at
        with pytest.raises(TypeError):
            as_array_tree(object())


class TestZeroWeights:
    def test_zero_weight_nodes_preserved(self):
        tree = TaskTree([-1, 0, 0, 1], [0, 0, 7, 0])
        at = ArrayTree.from_task_tree(tree)
        assert list(at.weights) == [0, 0, 7, 0]
        assert at.to_task_tree().weights == (0, 0, 7, 0)
        assert at.wbar[0] == tree.wbar[0]

    def test_all_zero_tree(self):
        at = ArrayTree([-1, 0], [0, 0])
        assert at.total_weight() == 0
        assert at.min_feasible_memory() == 0

    def test_total_weight_exact_beyond_float53(self):
        # The int64 budget reaches past float64's 2^53 integer range;
        # total_weight must stay exact there (engine-equivalence hinges
        # on it).
        weights = [2**53, 3, 5, 7]
        at = ArrayTree([-1, 0, 0, 1], weights)
        tree = TaskTree([-1, 0, 0, 1], weights)
        assert at.total_weight() == tree.total_weight() == 2**53 + 15


#: descriptions TaskTree rejects; ArrayTree must reject every one too.
_INVALID = [
    ([], []),  # empty
    ([-1, 0], [1]),  # size mismatch
    ([-1, -1], [1, 1]),  # two roots
    ([0, 1], [1, 1]),  # no root (cycle through everything)
    ([-1, 2, 1], [1, 1, 1]),  # cycle off the root
    ([-1, 5], [1, 1]),  # out-of-range parent
    ([-1, -3], [1, 1]),  # out-of-range (negative) parent
    ([-1, 0], [1, -2]),  # negative weight
    ([-1, 0], [1, 1.5]),  # non-integral weight
    ([-1, 0], [1, True]),  # boolean weight
]


class TestValidation:
    @pytest.mark.parametrize("parents,weights", _INVALID)
    def test_rejection_matches_task_tree(self, parents, weights):
        with pytest.raises(TreeError):
            TaskTree(parents, weights)
        with pytest.raises(TreeError):
            ArrayTree(parents, weights)

    def test_integral_float_weight_accepted_like_task_tree(self):
        # TaskTree accepts weights like 2.0 (integral floats); so must we.
        tree = TaskTree([-1, 0], [1, 2.0])
        at = ArrayTree([-1, 0], [1, 2.0])
        assert at == tree
        assert list(at.weights) == [1, 2]

    def test_huge_weight_falls_back_to_object_engine(self):
        # Beyond int64 the flat layout refuses, but the object engine
        # (arbitrary precision) still runs — the dispatch must not fail.
        from repro.algorithms.postorder import postorder_min_mem
        from repro.core.engine import array_tree_or_none

        tree = TaskTree([-1, 0], [2**70, 1])
        with pytest.raises(TreeError):
            ArrayTree.from_task_tree(tree)
        assert array_tree_or_none(tree, "array") is None
        result = postorder_min_mem(tree, engine="array")  # silently object
        assert result.peak_memory == 2**70


class TestEngineSelection:
    def test_resolution_rules(self):
        small = chain_tree([1, 2])
        big = TaskTree(
            [-1] + list(range(AUTO_THRESHOLD)), [1] * (AUTO_THRESHOLD + 1)
        )
        assert resolve_engine("object", big) == "object"
        assert resolve_engine("array", small) == "array"
        assert resolve_engine(None, small) in ("object", "array")
        previous = set_default_engine("auto")
        try:
            assert resolve_engine(None, small) == "object"
            assert resolve_engine(None, big) == "array"
            assert resolve_engine(None, as_array_tree(small)) == "array"
        finally:
            set_default_engine(previous)

    def test_auto_scope_does_not_shadow_process_default(self):
        # "auto" means "no preference": a request that does not pin an
        # engine must inherit a server-wide default (serve --engine /
        # REPRO_ENGINE), not silently re-enable auto dispatch.
        big = TaskTree(
            [-1] + list(range(AUTO_THRESHOLD)), [1] * (AUTO_THRESHOLD + 1)
        )
        previous = set_default_engine("object")
        try:
            with engine_scope("auto"):
                assert resolve_engine(None, big) == "object"
            with engine_scope(None):
                assert resolve_engine(None, big) == "object"
            with engine_scope("array"):
                assert resolve_engine(None, big) == "array"
        finally:
            set_default_engine(previous)

    def test_engine_scope_restores(self):
        before = default_engine()
        with engine_scope("object"):
            assert default_engine() == "object"
            with engine_scope("array"):
                assert default_engine() == "array"
            assert default_engine() == "object"
        assert default_engine() == before
        with pytest.raises(ValueError):
            with engine_scope("vector"):
                pass  # pragma: no cover

    def test_set_default_engine_round_trip(self):
        previous = set_default_engine("object")
        try:
            assert default_engine() == "object"
        finally:
            set_default_engine(previous)
        with pytest.raises(ValueError):
            set_default_engine("nope")
