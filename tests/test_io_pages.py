"""Unit tests for the page-table layer (repro.io.pages)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io.pages import PageMap


class TestLayout:
    def test_unit_pages_one_per_weight_unit(self):
        pmap = PageMap([3, 1, 2], page_size=1)
        assert pmap.total_pages == 6
        assert list(pmap.pages_of(0)) == [0, 1, 2]
        assert list(pmap.pages_of(1)) == [3]
        assert list(pmap.pages_of(2)) == [4, 5]

    def test_page_ranges_are_disjoint_and_cover(self):
        pmap = PageMap([5, 7, 2, 9], page_size=3)
        seen = []
        for v in pmap.iter_nodes():
            seen.extend(pmap.pages_of(v))
        assert seen == list(range(pmap.total_pages))

    def test_owner_inverts_pages_of(self):
        pmap = PageMap([4, 2, 6], page_size=2)
        for v in pmap.iter_nodes():
            for p in pmap.pages_of(v):
                assert pmap.owner(p) == v

    def test_zero_weight_node_has_no_pages(self):
        pmap = PageMap([2, 0, 1], page_size=1)
        assert pmap.page_count(1) == 0
        assert list(pmap.pages_of(1)) == []

    def test_page_count_is_ceiling(self):
        pmap = PageMap([1, 4, 5, 8], page_size=4)
        assert [pmap.page_count(v) for v in range(4)] == [1, 1, 2, 2]


class TestPayload:
    def test_full_pages_carry_page_size(self):
        pmap = PageMap([8], page_size=4)
        assert [pmap.payload(p) for p in pmap.pages_of(0)] == [4, 4]

    def test_last_page_partial(self):
        pmap = PageMap([7], page_size=4)
        assert [pmap.payload(p) for p in pmap.pages_of(0)] == [4, 3]

    @given(w=st.integers(0, 60), p=st.integers(1, 9))
    def test_payload_sums_to_weight(self, w, p):
        pmap = PageMap([w], page_size=p)
        assert sum(pmap.payload(q) for q in pmap.pages_of(0)) == w

    @given(w=st.integers(0, 60), p=st.integers(1, 9))
    def test_rounded_weight_is_ceiling_times_page(self, w, p):
        pmap = PageMap([w], page_size=p)
        assert pmap.rounded_weight(0) == -(-w // p) * p
        assert pmap.rounded_weights() == (pmap.rounded_weight(0),)


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, -(10**9)])
    def test_rejects_nonpositive_page_size(self, bad):
        with pytest.raises(ValueError):
            PageMap([1, 2], page_size=bad)

    def test_rejects_fractional_page_size(self):
        with pytest.raises(ValueError):
            PageMap([1], page_size=1.5)  # type: ignore[arg-type]

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            PageMap([1, -2], page_size=1)

    def test_repr_mentions_sizes(self):
        r = repr(PageMap([3, 3], page_size=2))
        assert "page_size=2" in r and "total_pages=4" in r
