"""One test per recursion site found by the deep-tree audit.

Every algorithm whose natural formulation recurses per node has been
converted to an explicit stack (or hard-guarded where conversion makes
no sense because the search is exponential anyway).  Each converted site
gets two checks: the deep instance that used to die with
``RecursionError``, and an order/result-equivalence check against a
reference recursive formulation on small instances, so the conversion
provably changed *nothing* but the stack discipline.

The deep runs execute under a deliberately *lowered* recursion limit —
if anything still recurses per node, the test fails immediately instead
of depending on interpreter defaults.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from itertools import permutations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.algorithms.brute_force import iter_postorders, iter_topological_orders
from repro.algorithms.exact import MAX_EXACT_NODES, exact_min_io
from repro.algorithms.integral_io import (
    min_whole_node_io_given_schedule,
    whole_node_fif,
)
from repro.core.tree import TaskTree, chain_tree
from repro.datasets.nested_dissection import nested_dissection_ordering


@contextmanager
def low_recursion_limit(limit: int = 170):
    """Prove iterativeness: per-node recursion dies instantly under this."""
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(limit)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


DEEP = 3000  # far beyond any recursion limit we set


# ----------------------------------------------------------------------
# integral_io._feasible_eviction_exact (the issue's named example)
# ----------------------------------------------------------------------
class TestIntegralIOWalk:
    def test_deep_chain_exact_eviction(self):
        tree = chain_tree([1] * DEEP)
        schedule = list(range(DEEP - 1, -1, -1))  # leaf up to the root
        with low_recursion_limit():
            result = min_whole_node_io_given_schedule(tree, schedule, memory=2)
        assert result.io_volume == 0

    def test_deep_chain_with_forced_evictions(self):
        # Alternating weights force whole-node decisions along the chain.
        weights = [2 if i % 2 else 1 for i in range(400)]
        tree = chain_tree(weights)
        schedule = list(range(399, -1, -1))
        with low_recursion_limit():
            exact = min_whole_node_io_given_schedule(tree, schedule, memory=4)
        greedy = whole_node_fif(tree, schedule, memory=4)
        assert 0 <= exact.io_volume <= greedy.io_volume

    def test_matches_recursive_reference_on_small_trees(self):
        def reference(tree, schedule, memory):
            """The original recursive formulation, verbatim."""
            weights, children = tree.weights, tree.children
            pos = {v: t for t, v in enumerate(schedule)}
            windows = {}
            for v in schedule:
                p = tree.parents[v]
                death = pos.get(p, len(schedule))
                if death > pos[v] + 1 or p == -1:
                    windows[v] = (pos[v], death)
            best = [float("inf"), frozenset()]

            def walk(t, evicted, cost):
                if cost >= best[0]:
                    return
                if t == len(schedule):
                    best[0], best[1] = cost, evicted
                    return
                v = schedule[t]
                wbar_v = max(weights[v], sum(weights[c] for c in children[v]))
                active = [
                    k
                    for k, (birth, death) in windows.items()
                    if birth < t < death and k not in evicted and weights[k] > 0
                ]
                if wbar_v + sum(weights[k] for k in active) <= memory:
                    walk(t + 1, evicted, cost)
                    return
                if wbar_v > memory or not active:
                    return
                for k in active:
                    walk(t, evicted | {k}, cost + weights[k])

            walk(0, frozenset(), 0)
            return int(best[0]), best[1]

        rng = np.random.default_rng(5)
        for _ in range(40):
            n = int(rng.integers(2, 9))
            parents = [-1] + [int(rng.integers(0, i)) for i in range(1, n)]
            weights = [int(w) for w in rng.integers(1, 6, size=n)]
            tree = TaskTree(parents, weights)
            schedule = tree.postorder()
            memory = int(max(tree.wbar)) + int(rng.integers(0, 6))
            got = min_whole_node_io_given_schedule(tree, schedule, memory)
            want_cost, want_set = reference(tree, schedule, memory)
            assert got.io_volume == want_cost
            assert got.evicted == want_set  # same tie-break, not just cost


# ----------------------------------------------------------------------
# brute_force.iter_topological_orders / iter_postorders
# ----------------------------------------------------------------------
class TestBruteForceEnumerators:
    def test_deep_chain_single_topological_order(self):
        tree = chain_tree([1] * DEEP)
        with low_recursion_limit():
            orders = list(iter_topological_orders(tree))
        assert orders == [list(range(DEEP - 1, -1, -1))]

    def test_deep_chain_single_postorder(self):
        tree = chain_tree([1] * DEEP)
        with low_recursion_limit():
            orders = list(iter_postorders(tree))
        assert orders == [list(range(DEEP - 1, -1, -1))]

    def test_enumeration_order_matches_recursive_reference(self):
        def ref_topological(tree):
            remaining = [len(c) for c in tree.children]
            available = [v for v in range(tree.n) if remaining[v] == 0]
            prefix = []

            def backtrack():
                if len(prefix) == tree.n:
                    yield list(prefix)
                    return
                for i in range(len(available)):
                    v = available[i]
                    available[i] = available[-1]
                    available.pop()
                    prefix.append(v)
                    p = tree.parents[v]
                    activated = False
                    if p != -1:
                        remaining[p] -= 1
                        if remaining[p] == 0:
                            available.append(p)
                            activated = True
                    yield from backtrack()
                    if activated:
                        available.pop()
                    if p != -1:
                        remaining[p] += 1
                    prefix.pop()
                    available.append(v)
                    available[i], available[-1] = available[-1], available[i]

            yield from backtrack()

        def ref_postorders(tree):
            def orders(v):
                kids = tree.children[v]
                if not kids:
                    yield [v]
                    return
                child_lists = [list(orders(c)) for c in kids]
                for perm in permutations(range(len(kids))):
                    stack = [[]]
                    for idx in perm:
                        stack = [a + s for a in stack for s in child_lists[idx]]
                    for acc in stack:
                        yield acc + [v]

            yield from orders(tree.root)

        rng = np.random.default_rng(9)
        for _ in range(25):
            n = int(rng.integers(1, 8))
            parents = [-1] + [int(rng.integers(0, i)) for i in range(1, n)]
            tree = TaskTree(parents, [1] * n)
            assert list(iter_topological_orders(tree)) == list(ref_topological(tree))
            assert list(iter_postorders(tree)) == list(ref_postorders(tree))


# ----------------------------------------------------------------------
# nested_dissection.dissect
# ----------------------------------------------------------------------
class TestNestedDissection:
    def test_long_path_graph_under_low_recursion_limit(self):
        n = 2000
        diag = np.ones(n - 1)
        a = sp.diags([diag, diag], [-1, 1], format="csr")
        with low_recursion_limit():
            order = nested_dissection_ordering(a)
        assert sorted(order.tolist()) == list(range(n))

    def test_deterministic_and_separator_last(self):
        n = 257
        diag = np.ones(n - 1)
        a = sp.diags([diag, diag], [-1, 1], format="csr")
        first = nested_dissection_ordering(a).tolist()
        second = nested_dissection_ordering(a).tolist()
        assert first == second
        # The top separator of a path is ordered last and sits mid-path.
        assert n // 4 <= first[-1] <= 3 * n // 4


# ----------------------------------------------------------------------
# exact.exact_min_io (guarded, not converted: exponential search)
# ----------------------------------------------------------------------
class TestExactGuard:
    def test_hard_ceiling_refuses_before_recursion_could_die(self):
        n = MAX_EXACT_NODES + 100
        tree = chain_tree([1] * n)
        with pytest.raises(ValueError, match="hard ceiling"):
            exact_min_io(tree, memory=2, node_limit=n + 1)

    def test_node_limit_error_still_first(self):
        tree = chain_tree([1] * 30)
        with pytest.raises(ValueError, match="node_limit"):
            exact_min_io(tree, memory=2, node_limit=10)
