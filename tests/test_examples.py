"""Smoke tests: the runnable examples must stay runnable.

Runs the fast examples as subprocesses (fresh interpreter, public API
only — exactly what a user does).  The slower studies (figure_gallery,
parallel_window_study, exact_gap_study, perf_profile_study) are covered
by their underlying modules' tests and excluded here to keep the suite
quick; run them directly or via `pytest -m examples_slow` if added.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "counterexamples.py",
    "solver_pipeline.py",
    "paging_policies.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_every_example_file_has_a_docstring_and_main():
    for path in sorted(EXAMPLES.glob("*.py")):
        text = path.read_text()
        assert '"""' in text.split("\n", 3)[1] or text.startswith('#!'), path
        assert '__main__' in text, f"{path} is not runnable"
