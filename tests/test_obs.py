"""Tests for the observability layer (repro.obs) and its service wiring.

Covers the metric primitives (histogram edge cases, concurrent
observe-vs-scrape), span tracing, the schedule-trace/replay peak
identity, and the server-side surface: Prometheus negotiation on
``/metrics``, version info on ``/healthz``, the dashboard routes, and
the traced round trip whose envelope carries the stage breakdown.
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.bounds import memory_bounds
from repro.core.trace import replay, traversal_trace
from repro.core.tree import TaskTree
from repro.core.traversal import validate
from repro.datasets.instances import figure_2b
from repro.datasets.synth import synth_instance
from repro.experiments.registry import get_algorithm
from repro.obs import (
    Histogram,
    MetricsRegistry,
    current_trace_id,
    new_trace_id,
    schedule_trace,
    span,
    trace_context,
)
from repro.service import ServerConfig, ServerThread, ServiceClient

TREE = figure_2b().tree
TREE_DICT = TREE.to_dict()


# --------------------------------------------------------------------- #
# metric primitives
# --------------------------------------------------------------------- #


class TestCounter:
    def test_labels_return_cached_children(self):
        registry = MetricsRegistry()
        counter = registry.counter("things_total", "things")
        a = counter.labels(kind="a")
        assert counter.labels(kind="a") is a
        a.inc()
        a.inc(2)
        counter.labels(kind="b").inc()
        assert counter.value == 4
        assert counter.child_values() == {"a": 3, "b": 1}

    def test_kind_mismatch_is_a_type_error(self):
        registry = MetricsRegistry()
        registry.counter("x", "")
        with pytest.raises(TypeError):
            registry.gauge("x", "")

    def test_gauge_callback_is_read_at_scrape_time(self):
        registry = MetricsRegistry()
        depth = [0]
        registry.gauge("depth", "").set_function(lambda: depth[0])
        depth[0] = 7
        assert registry.snapshot()["depth"] == 7

    def test_crashed_gauge_callback_is_counted_and_logged_once(self, caplog):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "")
        gauge.set(3)

        def boom():
            raise RuntimeError("backend gone")

        gauge.set_function(boom)
        with caplog.at_level("ERROR", logger="repro.obs.metrics"):
            snap = registry.snapshot()
            registry.snapshot()
        # falls back to the last set value, never a silent 0
        assert snap["depth"] == 3
        assert snap["gauge_scrape_errors_total"] == 1
        assert registry.snapshot()["gauge_scrape_errors_total"] == 3
        # logged once per gauge, not once per scrape
        logged = [r for r in caplog.records if "depth" in r.message]
        assert len(logged) == 1
        text = registry.render_prometheus()
        assert 'gauge_scrape_errors_total{gauge="depth"}' in text

    def test_healthy_scrapes_report_no_error_series(self):
        registry = MetricsRegistry()
        registry.gauge("depth", "").set_function(lambda: 4)
        snap = registry.snapshot()
        assert snap["depth"] == 4
        assert "gauge_scrape_errors_total" not in snap
        assert "gauge_scrape_errors_total" not in registry.render_prometheus()

    def test_uptime_is_monotonic_anchored(self, monkeypatch):
        import time as time_mod

        registry = MetricsRegistry()
        up = registry.uptime()
        assert up >= 0.0
        # a wall-clock step must not affect uptime
        monkeypatch.setattr(
            time_mod, "time", lambda: registry.started_at - 3600.0
        )
        assert registry.uptime() >= up


class TestHistogramEdgeCases:
    def test_empty_window(self):
        h = Histogram("lat", window=8)
        assert h.summary() == {
            "count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0,
        }
        assert h.window_values() == []
        assert h.total_count == 0

    def test_single_sample(self):
        h = Histogram("lat", window=8)
        h.observe(0.25)
        s = h.summary(scale=1000.0)
        assert s == {
            "count": 1, "p50": 250.0, "p90": 250.0, "p99": 250.0, "max": 250.0,
        }

    def test_window_wraparound_keeps_most_recent(self):
        h = Histogram("lat", window=4)
        for v in range(10):  # 0..9; window must hold 6,7,8,9
            h.observe(float(v))
        assert h.window_values() == [6.0, 7.0, 8.0, 9.0]
        assert h.total_count == 10
        assert h.total_sum == sum(range(10))
        assert h.summary()["count"] == 4
        assert h.summary()["max"] == 9.0

    def test_percentile_formula_is_the_legacy_one(self):
        # sorted[min(len - 1, int(q * len))] — pinned bit for bit
        values = [float(v) for v in range(10)]
        assert Histogram.percentile(values, 0.50) == 5.0
        assert Histogram.percentile(values, 0.90) == 9.0
        assert Histogram.percentile(values, 0.99) == 9.0
        assert Histogram.percentile([], 0.5) == 0.0

    def test_concurrent_observe_vs_thread_scrapes(self):
        # an asyncio loop records latencies while a foreign thread
        # scrapes summaries: no exception, every summary self-consistent
        h = Histogram("lat", window=64)
        stop = threading.Event()
        failures: list[str] = []

        def scraper():
            while not stop.is_set():
                s = h.summary()
                if not (s["p50"] <= s["p90"] <= s["p99"] <= s["max"]) and s["count"]:
                    failures.append(f"inconsistent summary: {s}")

        thread = threading.Thread(target=scraper)
        thread.start()

        async def burst():
            for i in range(2000):
                h.observe(float(i % 97))
                if i % 256 == 0:
                    await asyncio.sleep(0)

        try:
            asyncio.run(burst())
        finally:
            stop.set()
            thread.join()
        assert not failures
        assert h.total_count == 2000


class TestPrometheusRendering:
    def test_text_exposition_has_series_and_summaries(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests")
        counter.labels(encoding="json").inc(3)
        registry.gauge("queue_depth", "depth").set(2)
        registry.histogram("solve_seconds", "latency").observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{encoding="json"} 3' in text
        assert "queue_depth 2" in text
        assert 'solve_seconds{quantile="0.5"} 0.5' in text
        assert "solve_seconds_count 1" in text


# --------------------------------------------------------------------- #
# span tracing
# --------------------------------------------------------------------- #


class TestSpans:
    def test_span_without_trace_is_a_noop(self):
        assert current_trace_id() is None
        with span("solve") as trace:
            assert trace is None

    def test_spans_accumulate_into_the_active_trace(self):
        with trace_context("abc123") as trace:
            assert current_trace_id() == "abc123"
            with span("solve"):
                pass
            with span("solve"):
                pass
            with span("encode"):
                pass
        assert current_trace_id() is None
        assert set(trace.stages) == {"solve", "encode"}
        assert trace.stages["solve"] >= 0.0

    def test_new_trace_ids_are_distinct_hex(self):
        a, b = new_trace_id(), new_trace_id()
        assert a != b
        assert len(a) == 16
        int(a, 16)  # must be hex


# --------------------------------------------------------------------- #
# schedule traces
# --------------------------------------------------------------------- #


def _solved(tree: TaskTree, memory: int, algorithm: str = "PostOrderMinIO"):
    traversal = get_algorithm(algorithm)(tree, memory)
    validate(tree, traversal, memory)
    return traversal


class TestScheduleTrace:
    @pytest.mark.parametrize("algorithm", ["PostOrderMinIO", "RecExpand"])
    def test_peak_matches_replay_exactly(self, algorithm):
        # the acceptance identity: curve max == the independent replay's
        # peak, across synthetic instances that actually do I/O
        checked = 0
        for seed in range(30):
            tree = synth_instance(40, seed=seed)
            bounds = memory_bounds(tree)
            if not bounds.has_io_regime:
                continue
            memory = bounds.mid
            traversal = _solved(tree, memory, algorithm)
            trace = schedule_trace(
                tree.parents, tree.weights, traversal.schedule, traversal.io
            )
            result = replay(tree, traversal_trace(tree, traversal), memory)
            assert trace["peak_memory"] == result.peak_memory
            assert trace["peak_memory"] == max(trace["memory"])
            assert trace["io_volume"] == result.io_volume
            assert trace["cumulative_io"][-1] == traversal.io_volume
            checked += 1
        assert checked >= 5  # the sweep must actually exercise I/O

    def test_trace_shape_is_consistent(self):
        traversal = _solved(TREE, 6)
        trace = schedule_trace(
            TREE.parents, TREE.weights, traversal.schedule, traversal.io
        )
        n_events = len(trace["nodes"])
        assert len(trace["kinds"]) == n_events
        assert len(trace["memory"]) == n_events
        assert len(trace["cumulative_io"]) == n_events
        assert set(trace["kinds"]) <= {"r", "x", "w"}
        assert trace["kinds"].count("x") == TREE.n
        assert trace["version"] == 1

    def test_empty_schedule(self):
        trace = schedule_trace([], [], [], [])
        assert trace["peak_memory"] == 0
        assert trace["memory"] == []


# --------------------------------------------------------------------- #
# the service surface
# --------------------------------------------------------------------- #


@pytest.fixture(scope="class")
def dash_server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("obs-cache")
    config = ServerConfig(
        port=0, workers=0, dashboard=True, cache_dir=str(cache_dir)
    )
    with ServerThread(config) as srv:
        client = ServiceClient(port=srv.port)
        assert client.wait_ready()
        yield srv, client


def _get(port: int, path: str, accept: str | None = None) -> tuple[int, str, bytes]:
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}")
    if accept:
        request.add_header("Accept", accept)
    try:
        with urllib.request.urlopen(request) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read(),
            )
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type", ""), err.read()


class TestServiceObservability:
    def test_healthz_reports_versions(self, dash_server):
        _, client = dash_server
        info = client.health()
        assert info["ok"] is True
        versions = info["versions"]
        assert set(versions) == {"repro", "protocol", "wire", "engine"}
        import repro

        assert versions["repro"] == repro.__version__

    def test_metrics_negotiates_prometheus_text(self, dash_server):
        srv, client = dash_server
        client.solve(TREE_DICT, 6, algorithm="PostOrderMinIO")
        # default: the legacy JSON shape, with the new sub-keys
        metrics = client.metrics()
        assert metrics["requests"]["received"] >= 1
        assert {"json", "binary"} == set(metrics["requests"]["by_encoding"])
        assert "by_strategy" in metrics["requests"]
        assert {"hits", "misses", "memo_hits", "disk_hits"} <= set(
            metrics["cache"]
        )
        assert {"rx", "tx"} == set(metrics["wire_bytes"])
        assert {"count", "p50", "p90", "p99", "max"} == set(
            metrics["latency_ms"]
        )
        # Accept: text/plain → Prometheus exposition
        status, content_type, raw = _get(srv.port, "/metrics", "text/plain")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = raw.decode()
        assert "# TYPE requests_total counter" in text
        assert "queue_depth" in text
        assert "solve_seconds_count" in text

    def test_traced_submit_carries_stage_breakdown(self, dash_server):
        _, client = dash_server
        envelope = client.submit({
            "kind": "solve",
            "tree": TREE_DICT,
            "memory": 6,
            "algorithm": "RecExpand",
            "trace": new_trace_id(),
            "trace_schedule": True,
        })
        assert envelope["ok"] is True
        timings = envelope["timings"]
        assert {"decode", "cache", "queue", "solve", "encode"} <= set(timings)
        assert all(v >= 0.0 for v in timings.values())
        result = envelope["result"]
        trace = result["schedule_trace"]
        assert result["peak_memory"] == trace["peak_memory"]
        assert trace["peak_memory"] == max(trace["memory"])

    def test_trace_schedule_peak_matches_solver_replay(self, dash_server):
        _, client = dash_server
        traversal = _solved(TREE, 6, "RecExpand")
        expected = replay(TREE, traversal_trace(TREE, traversal), 6)
        envelope = client.submit({
            "kind": "solve", "tree": TREE_DICT, "memory": 6,
            "algorithm": "RecExpand", "trace_schedule": True,
        })
        result = envelope["result"]
        assert result["peak_memory"] == expected.peak_memory
        assert result["schedule_trace"]["io_volume"] == expected.io_volume

    def test_trace_schedule_key_differs_from_plain(self):
        from repro.api import parse_request

        plain = parse_request({
            "kind": "solve", "tree": TREE_DICT, "memory": 6,
            "algorithm": "RecExpand",
        })
        traced = parse_request({
            "kind": "solve", "tree": TREE_DICT, "memory": 6,
            "algorithm": "RecExpand", "trace_schedule": True,
        })
        with_id = parse_request({
            "kind": "solve", "tree": TREE_DICT, "memory": 6,
            "algorithm": "RecExpand", "trace": "abc",
        })
        # the flag changes the result payload, so it must change the key;
        # a trace id is delivery policy and must NOT change the key
        assert plain.key() != traced.key()
        assert plain.key() == with_id.key()

    def test_untraced_envelope_has_no_timings(self, dash_server):
        _, client = dash_server
        envelope = client.submit({
            "kind": "solve", "tree": TREE_DICT, "memory": 6,
            "algorithm": "PostOrderMinIO",
        })
        assert envelope["ok"] is True
        assert "timings" not in envelope

    def test_dashboard_page_and_data(self, dash_server):
        srv, client = dash_server
        client.solve(TREE_DICT, 6, algorithm="PostOrderMinIO")
        status, content_type, raw = _get(srv.port, "/dash")
        assert status == 200
        assert content_type.startswith("text/html")
        assert b"repro-ioschedule" in raw
        status, _, raw = _get(srv.port, "/dash/data")
        assert status == 200
        data = json.loads(raw)
        assert data["metrics"]["requests"]["received"] >= 1
        assert data["recent"], "recent-request ring must be populated"
        entry = data["recent"][-1]
        assert {"key", "kind", "algorithm", "cached", "elapsed_ms"} <= set(entry)

    def test_dashboard_trace_drilldown_svg(self, dash_server):
        srv, client = dash_server
        envelope = client.submit({
            "kind": "solve", "tree": TREE_DICT, "memory": 6,
            "algorithm": "RecExpand", "trace_schedule": True,
        })
        status, content_type, raw = _get(
            srv.port, f"/dash/trace/{envelope['key']}"
        )
        assert status == 200
        assert content_type.startswith("image/svg+xml")
        assert b"<svg" in raw
        # a key without a schedule trace is a clean 404
        status, _, _ = _get(srv.port, "/dash/trace/" + "0" * 64)
        assert status == 404

    def test_dashboard_off_by_default(self):
        with ServerThread(ServerConfig(port=0, workers=0)) as srv:
            client = ServiceClient(port=srv.port)
            assert client.wait_ready()
            status, _, _ = _get(srv.port, "/dash")
            assert status == 404

    def test_observability_off_is_a_noop(self):
        config = ServerConfig(port=0, workers=0, observability=False)
        with ServerThread(config) as srv:
            client = ServiceClient(port=srv.port)
            assert client.wait_ready()
            client.solve(TREE_DICT, 6, algorithm="PostOrderMinIO")
            metrics = client.metrics()
            assert metrics["requests"]["received"] == 0
            assert metrics["latency_ms"]["count"] == 0

    def test_client_injects_ambient_trace_id(self, dash_server):
        _, client = dash_server
        with trace_context("ambient-id-42"):
            envelope = client.submit({
                "kind": "solve", "tree": TREE_DICT, "memory": 6,
                "algorithm": "RecExpand",
            })
        assert envelope["ok"] is True
        assert "timings" in envelope


class TestWorkerPoolCounters:
    def test_pool_batches_count_into_registry(self):
        import asyncio as _asyncio

        from repro.service.pool import WorkerPool

        registry = MetricsRegistry()
        pool = WorkerPool(0, registry=registry)
        try:
            payload = {
                "kind": "solve", "tree": TREE_DICT, "memory": 6,
                "algorithm": "PostOrderMinIO",
            }
            envelopes = _asyncio.run(pool.run_batch([payload]))
            assert envelopes[0]["ok"] is True
        finally:
            pool.shutdown()
        counted = registry.counter("pool_batches_total").child_values()
        assert sum(counted.values()) == 1


class TestBackendCounters:
    def test_local_backend_counts_requests(self):
        from repro.api import LocalBackend, parse_request

        registry = MetricsRegistry()
        backend = LocalBackend(registry=registry)
        request = parse_request({
            "kind": "solve", "tree": TREE_DICT, "memory": 6,
            "algorithm": "PostOrderMinIO",
        })
        outcome = backend.submit(request)
        assert outcome.ok
        counted = registry.counter("requests_total").child_values()
        assert counted == {"local": 1}
