"""Tests for the homogeneous-tree machinery (Section 4.2, Theorem 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.algorithms.brute_force import min_io_brute
from repro.algorithms.homogeneous import (
    homogeneous_labels,
    optimal_io,
    postorder_schedule,
)
from repro.algorithms.liu import min_peak_memory
from repro.algorithms.postorder import postorder_min_io
from repro.core.simulator import fif_io_volume, schedule_peak_memory
from repro.core.traversal import is_postorder
from repro.core.tree import TaskTree, balanced_binary_tree, chain_tree, star_tree

from .conftest import homogeneous_trees


class TestGuards:
    def test_rejects_non_homogeneous(self):
        with pytest.raises(ValueError, match="homogeneous"):
            homogeneous_labels(TaskTree([-1, 0], [1, 2]), 5)

    def test_rejects_too_small_memory(self):
        tree = star_tree(1, [1, 1, 1])  # wbar(root) = 3
        with pytest.raises(ValueError, match="minimal feasible"):
            homogeneous_labels(tree, 2)


class TestLLabels:
    def test_leaf_label_is_one(self):
        labels = homogeneous_labels(TaskTree([-1], [1]), 1)
        assert labels.l == (1,)

    def test_chain_label_is_one(self):
        tree = chain_tree([1, 1, 1, 1])
        labels = homogeneous_labels(tree, 1)
        assert set(labels.l) == {1}

    def test_star_label_equals_degree(self):
        tree = star_tree(1, [1] * 4)
        labels = homogeneous_labels(tree, 4)
        assert labels.l[tree.root] == 4

    def test_balanced_binary_label_grows_with_depth(self):
        # Sethi–Ullman numbers: depth-d complete binary tree needs d+1 slots.
        for depth in (1, 2, 3, 4):
            tree = balanced_binary_tree(depth)
            labels = homogeneous_labels(tree, tree.n)
            assert labels.l[tree.root] == depth + 1

    @given(homogeneous_trees(max_nodes=10))
    def test_l_equals_min_peak(self, tree):
        """l(root) is exactly the MinMem optimum on unit-weight trees."""
        labels = homogeneous_labels(tree, max(tree.min_feasible_memory(), tree.n))
        assert labels.l[tree.root] == min_peak_memory(tree)

    @given(homogeneous_trees(max_nodes=10))
    def test_postorder_realises_l(self, tree):
        schedule = postorder_schedule(tree)
        labels = homogeneous_labels(tree, max(tree.min_feasible_memory(), tree.n))
        assert schedule_peak_memory(tree, schedule) == labels.l[tree.root]
        assert is_postorder(tree, schedule)


class TestCWLabels:
    def test_no_io_when_memory_equals_peak(self):
        tree = balanced_binary_tree(3)
        peak = min_peak_memory(tree)
        assert optimal_io(tree, peak) == 0

    def test_io_at_tight_memory(self):
        tree = balanced_binary_tree(3)
        peak = min_peak_memory(tree)
        assert optimal_io(tree, peak - 1) > 0

    def test_c_zero_for_first_child(self):
        tree = star_tree(1, [1] * 5)
        labels = homogeneous_labels(tree, 5)
        first = labels.child_order[tree.root][0]
        assert labels.c[first] == 0

    def test_w_sums_children_c(self):
        tree = balanced_binary_tree(3)
        labels = homogeneous_labels(tree, tree.min_feasible_memory())
        for v in range(tree.n):
            assert labels.w[v] == sum(labels.c[u] for u in tree.children[v])

    def test_total_is_sum_of_w(self):
        tree = balanced_binary_tree(4)
        labels = homogeneous_labels(tree, tree.min_feasible_memory())
        assert labels.total == sum(labels.w)

    def test_star_io_is_overflow(self):
        # A k-leaf star with M >= k never writes; the root step is wbar.
        tree = star_tree(1, [1] * 6)
        assert optimal_io(tree, 6) == 0


class TestTheorem4:
    @given(homogeneous_trees(min_nodes=2, max_nodes=9))
    @settings(max_examples=60)
    def test_w_equals_brute_force_optimum(self, tree):
        lb = tree.min_feasible_memory()
        peak = min_peak_memory(tree)
        if peak == lb:
            return
        for memory in range(lb, peak):
            w = optimal_io(tree, memory)
            brute, _ = min_io_brute(tree, memory)
            assert w == brute

    @given(homogeneous_trees(min_nodes=2, max_nodes=9))
    @settings(max_examples=60)
    def test_postorderminio_is_optimal_on_homogeneous(self, tree):
        """Theorem 4: the best postorder matches the global optimum W(T)."""
        lb = tree.min_feasible_memory()
        peak = min_peak_memory(tree)
        for memory in range(lb, peak + 1):
            res = postorder_min_io(tree, memory)
            assert res.predicted_io == optimal_io(tree, memory)

    @given(homogeneous_trees(min_nodes=2, max_nodes=10), st.integers(0, 3))
    def test_postorder_schedule_achieves_w(self, tree, slack):
        lb = tree.min_feasible_memory()
        memory = lb + slack
        schedule = postorder_schedule(tree)
        assert fif_io_volume(tree, schedule, memory) == optimal_io(tree, memory)
