"""Tests for the experiment harness (registry, datasets, figure runners)."""

from __future__ import annotations

import pytest

from repro.core.traversal import validate
from repro.datasets.instances import figure_2b
from repro.experiments.datasets import SCALES, build_synth, build_trees, current_scale
from repro.experiments.figures import run_comparison
from repro.experiments.registry import ALGORITHMS, PAPER_ALGORITHMS, get_algorithm


class TestRegistry:
    def test_paper_algorithms_registered(self):
        assert set(PAPER_ALGORITHMS) <= set(ALGORITHMS)

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("Quantum")

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_strategy_returns_valid_traversal(self, name):
        inst = figure_2b()
        traversal = get_algorithm(name)(inst.tree, inst.memory)
        validate(inst.tree, traversal, inst.memory)

    def test_expected_ordering_on_figure_2b(self):
        inst = figure_2b()
        io = {
            name: get_algorithm(name)(inst.tree, inst.memory).io_volume
            for name in PAPER_ALGORITHMS
        }
        assert io["FullRecExpand"] <= io["OptMinMem"]
        assert io["RecExpand"] <= io["OptMinMem"]


class TestDatasets:
    def test_scales_exist(self):
        assert {"tiny", "small", "paper"} <= set(SCALES)

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert current_scale().name == "tiny"
        monkeypatch.setenv("REPRO_SCALE", "nope")
        with pytest.raises(KeyError):
            current_scale()

    def test_build_synth_tiny(self):
        trees = build_synth("tiny")
        scale = SCALES["tiny"]
        assert len(trees) == scale.synth_trees
        assert all(t.n == scale.synth_nodes for t in trees)

    def test_build_synth_deterministic(self):
        assert build_synth("tiny") == build_synth("tiny")

    def test_build_trees_tiny_filtered(self):
        from repro.analysis.bounds import memory_bounds

        trees = build_trees("tiny")
        assert trees, "tiny TREES dataset is empty"
        assert all(memory_bounds(t).has_io_regime for t in trees)

    def test_build_trees_keep_all_larger(self):
        assert len(build_trees("tiny", keep_all=True)) >= len(build_trees("tiny"))


class TestRunComparison:
    @pytest.fixture(scope="class")
    def result(self):
        trees = build_synth("tiny")[:6]
        return run_comparison(
            "unit", trees, "Mmid", ("OptMinMem", "RecExpand", "PostOrderMinIO")
        )

    def test_result_shape(self, result):
        assert result.num_instances <= 6
        assert set(result.io_volumes) == {"OptMinMem", "RecExpand", "PostOrderMinIO"}
        assert len(result.memories) == result.num_instances

    def test_profile_consistent_with_io(self, result):
        for alg in result.algorithms:
            perfs = result.profile.performances[alg]
            for perf, io, mem in zip(perfs, result.io_volumes[alg], result.memories):
                assert perf == pytest.approx((mem + io) / mem)

    def test_summary_mentions_algorithms(self, result):
        text = result.summary()
        for alg in result.algorithms:
            assert alg in text

    def test_differing_subset_smaller(self, result):
        try:
            sub = result.differing_subset()
        except ValueError:
            pytest.skip("all algorithms equal on the tiny sample")
        assert sub.num_instances <= result.num_instances
        for i in range(sub.num_instances):
            values = {sub.io_volumes[a][i] for a in sub.algorithms}
            assert len(values) > 1

    def test_unknown_bound_raises(self):
        with pytest.raises(KeyError):
            run_comparison("x", build_synth("tiny")[:2], "M7", ("OptMinMem",))
