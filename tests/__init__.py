"""Test suite package marker.

Several test modules import shared hypothesis strategies with
``from .conftest import ...``; that relative import only resolves when
``tests`` is a proper package, which this file makes it.  Run the suite
from the repository root with ``PYTHONPATH=src python -m pytest -x -q``.
"""
