"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, settings

from repro.core.tree import TaskTree

# Property tests run many algorithm invocations per example; relax the
# per-example deadline so slow CI machines do not flake.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@st.composite
def task_trees(
    draw,
    min_nodes: int = 1,
    max_nodes: int = 9,
    min_weight: int = 1,
    max_weight: int = 9,
) -> TaskTree:
    """Random task trees: node ``i > 0`` attaches to a uniform earlier node.

    Every rooted tree shape on ``n`` nodes is reachable (up to relabeling),
    including chains, stars and bushy mixtures.
    """
    n = draw(st.integers(min_nodes, max_nodes))
    parents = [-1] + [draw(st.integers(0, i - 1)) for i in range(1, n)]
    weights = [draw(st.integers(min_weight, max_weight)) for _ in range(n)]
    return TaskTree(parents, weights)


@st.composite
def homogeneous_trees(draw, min_nodes: int = 1, max_nodes: int = 10) -> TaskTree:
    """Random unit-weight trees (the Section 4.2 regime)."""
    return draw(task_trees(min_nodes, max_nodes, min_weight=1, max_weight=1))


@st.composite
def trees_with_memory(draw, max_nodes: int = 8, max_weight: int = 9):
    """A tree plus a memory bound inside its I/O regime ``[LB, Peak]``.

    (``M = Peak`` is included: a valid bound where zero I/O is possible.)
    """
    from repro.algorithms.liu import min_peak_memory

    tree = draw(task_trees(min_nodes=1, max_nodes=max_nodes, max_weight=max_weight))
    lb = tree.min_feasible_memory()
    peak = min_peak_memory(tree)
    memory = draw(st.integers(lb, peak))
    return tree, memory


@pytest.fixture
def paper_fig2b_tree() -> TaskTree:
    from repro.datasets.instances import figure_2b

    return figure_2b().tree


@pytest.fixture
def small_chain() -> TaskTree:
    from repro.core.tree import chain_tree

    return chain_tree([3, 5, 2, 6])  # root first


@pytest.fixture
def small_star() -> TaskTree:
    from repro.core.tree import star_tree

    return star_tree(2, [4, 1, 3])
