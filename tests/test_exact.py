"""Tests for the exact branch-and-bound MinIO solver.

The decisive check is agreement with the independent factorial oracle
(`min_io_brute`) on random instances: the two implementations share no
search code, so agreement validates the antichain memoization, the
dominance rule and the concentrated-eviction branching all at once.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.algorithms.brute_force import min_io_brute
from repro.algorithms.exact import (
    ExactResult,
    SearchLimit,
    exact_min_io,
    optimality_gap,
)
from repro.core.traversal import validate
from repro.core.tree import TaskTree, chain_tree, star_tree

from .conftest import trees_with_memory


class TestAgainstBruteForce:
    @given(tm=trees_with_memory(max_nodes=7, max_weight=9))
    @settings(max_examples=60)
    def test_matches_factorial_oracle(self, tm):
        tree, memory = tm
        expected, _ = min_io_brute(tree, memory)
        result = exact_min_io(tree, memory)
        assert result.io_volume == expected
        assert result.optimal

    @given(tm=trees_with_memory(max_nodes=7, max_weight=9))
    @settings(max_examples=40)
    def test_returns_valid_traversal(self, tm):
        tree, memory = tm
        result = exact_min_io(tree, memory)
        validate(tree, result.traversal, memory)
        assert result.traversal.io_volume == result.io_volume


class TestPaperInstances:
    def test_figure_2b_optimum_is_three(self):
        from repro.datasets.instances import figure_2b

        inst = figure_2b()
        result = exact_min_io(inst.tree, inst.memory)
        assert result.io_volume == 3  # the witness is optimal

    def test_figure_2a_optimum_is_one(self):
        from repro.datasets.instances import figure_2a

        inst = figure_2a()
        result = exact_min_io(inst.tree, inst.memory)
        assert result.io_volume == 1

    def test_figure_6_optimum_is_three(self):
        from repro.datasets.instances import figure_6

        inst = figure_6()
        result = exact_min_io(inst.tree, inst.memory)
        assert result.io_volume == 3

    def test_figure_7_optimum_is_three(self):
        from repro.datasets.instances import figure_7

        inst = figure_7()
        result = exact_min_io(inst.tree, inst.memory)
        assert result.io_volume == 3

    def test_figure_2c_optimum_is_2k(self):
        from repro.datasets.instances import figure_2c

        inst = figure_2c(2)
        result = exact_min_io(inst.tree, inst.memory)
        assert result.io_volume == 2 * 2


class TestBoundsAndLimits:
    def test_no_io_needed_when_memory_is_peak(self):
        tree = chain_tree([3, 5, 2, 6])
        from repro.algorithms.liu import min_peak_memory

        result = exact_min_io(tree, min_peak_memory(tree))
        assert result.io_volume == 0
        assert result.optimal

    def test_lower_bound_recorded(self):
        tree = star_tree(1, [4, 4])
        result = exact_min_io(tree, 9)
        assert result.lower_bound >= 0
        assert result.io_volume >= result.lower_bound

    def test_infeasible_memory_raises(self):
        tree = star_tree(1, [4, 4])
        with pytest.raises(ValueError, match="feasibility"):
            exact_min_io(tree, 7)

    def test_node_limit_guard(self):
        tree = chain_tree([1] * 70)
        with pytest.raises(ValueError, match="node_limit"):
            exact_min_io(tree, 2)

    def test_state_budget_raises_search_limit(self):
        # A bushy heterogeneous tree with a tight bound and a tiny budget.
        tree = TaskTree(
            parents=[-1, 0, 0, 1, 1, 2, 2, 3, 4, 5],
            weights=[2, 5, 4, 6, 3, 5, 2, 7, 6, 5],
        )
        memory = tree.min_feasible_memory()
        try:
            exact_min_io(tree, memory, max_states=3)
        except SearchLimit:
            pass  # expected on any nontrivial search
        else:
            # If the heuristics already hit the lower bound, no search ran.
            result = exact_min_io(tree, memory, max_states=3)
            assert result.optimal

    def test_certificate_text(self):
        tree = chain_tree([2, 3])
        result = exact_min_io(tree, 5)
        assert "optimal" in result.certificate()
        assert isinstance(result, ExactResult)


class TestGapHelper:
    def test_gap_zero_for_optimal_io(self):
        tree = chain_tree([3, 5, 2, 6])
        memory = 7
        opt = exact_min_io(tree, memory).io_volume
        assert optimality_gap(tree, memory, opt) == pytest.approx(0.0)

    def test_gap_positive_for_suboptimal_io(self):
        tree = chain_tree([3, 5, 2, 6])
        memory = 7
        opt = exact_min_io(tree, memory).io_volume
        assert optimality_gap(tree, memory, opt + 3) > 0

    @given(tm=trees_with_memory(max_nodes=6, max_weight=8))
    @settings(max_examples=25)
    def test_heuristics_gap_is_nonnegative(self, tm):
        from repro.experiments.registry import get_algorithm

        tree, memory = tm
        for name in ("OptMinMem", "PostOrderMinIO", "RecExpand"):
            io = get_algorithm(name)(tree, memory).io_volume
            assert optimality_gap(tree, memory, io) >= -1e-12
