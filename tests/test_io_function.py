"""Tests for Theorem 2: recovering a schedule from an I/O function."""

from __future__ import annotations

from hypothesis import given, settings
import hypothesis.strategies as st

from repro.algorithms.io_function import schedule_for_io_function
from repro.algorithms.liu import min_peak_memory
from repro.core.simulator import fif_traversal
from repro.core.traversal import validate
from repro.core.tree import TaskTree, chain_tree, star_tree

from .conftest import task_trees, trees_with_memory


class TestBasics:
    def test_zero_io_with_ample_memory(self):
        tree = star_tree(1, [2, 3])
        traversal = schedule_for_io_function(tree, [0, 0, 0], 100)
        assert traversal is not None
        validate(tree, traversal, 100)

    def test_zero_io_below_peak_returns_none(self):
        tree = star_tree(1, [2, 3])
        peak = min_peak_memory(tree)
        assert schedule_for_io_function(tree, [0, 0, 0], peak - 1) is None

    def test_io_unlocks_tight_memory(self):
        # root(1) <- {a(2) <- leafA(6), b(2) <- leafB(6)}, M = 6:
        # no schedule works without I/O, but tau(a) = 2 suffices.
        tree = TaskTree([-1, 0, 0, 1, 2], [1, 2, 2, 6, 6])
        assert schedule_for_io_function(tree, [0, 0, 0, 0, 0], 6) is None
        traversal = schedule_for_io_function(tree, [0, 2, 0, 0, 0], 6)
        assert traversal is not None
        validate(tree, traversal, 6)
        assert traversal.io == (0, 2, 0, 0, 0)

    def test_infeasible_even_with_full_io(self):
        # wbar of the root is 7 no matter what.
        tree = star_tree(1, [3, 4])
        full = [0, 3, 4]
        assert schedule_for_io_function(tree, full, 6) is None

    def test_schedule_covers_all_nodes_once(self):
        tree = chain_tree([1, 2, 3, 4])
        traversal = schedule_for_io_function(tree, [0, 1, 0, 0], 10)
        assert traversal is not None
        assert sorted(traversal.schedule) == list(range(tree.n))


class TestRoundTrip:
    @given(trees_with_memory())
    @settings(max_examples=80)
    def test_fif_io_function_always_recoverable(self, tree_memory):
        """Any tau produced by FiF on a valid schedule admits a schedule."""
        tree, memory = tree_memory
        base = fif_traversal(tree, list(reversed(tree.topological_order())), memory)
        recovered = schedule_for_io_function(tree, list(base.io), memory)
        assert recovered is not None
        validate(tree, recovered, memory)
        assert recovered.io == base.io

    @given(task_trees(max_nodes=8))
    def test_full_io_function_always_feasible_at_lb(self, tree):
        io = [
            tree.weights[v] if tree.parents[v] != -1 else 0 for v in range(tree.n)
        ]
        memory = tree.min_feasible_memory()
        traversal = schedule_for_io_function(tree, io, memory)
        assert traversal is not None
        validate(tree, traversal, memory)

    @given(trees_with_memory(max_nodes=6), st.data())
    @settings(max_examples=60)
    def test_feasibility_matches_validity_oracle(self, tree_memory, data):
        """schedule_for_io_function finds a schedule iff one exists.

        The 'exists' side is checked by enumerating all topological orders
        and validating (tree, order, tau) directly.
        """
        from repro.algorithms.brute_force import iter_topological_orders
        from repro.core.traversal import InvalidTraversal, Traversal

        tree, memory = tree_memory
        io = tuple(
            data.draw(st.integers(0, tree.weights[v]), label=f"io[{v}]")
            if tree.parents[v] != -1
            else 0
            for v in range(tree.n)
        )
        found = schedule_for_io_function(tree, list(io), memory)
        exists = False
        for order in iter_topological_orders(tree):
            try:
                validate(tree, Traversal(tuple(order), io), memory)
                exists = True
                break
            except InvalidTraversal:
                continue
        assert (found is not None) == exists
        if found is not None:
            validate(tree, found, memory)
