"""Tests for memory bounds and the normalised performance metric."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.analysis.bounds import memory_bounds, paper_memory_grid, requires_io
from repro.analysis.metrics import best_performance, overhead, performance
from repro.core.tree import TaskTree, chain_tree, star_tree
from repro.datasets.instances import figure_2b

from .conftest import task_trees


class TestBounds:
    def test_chain_has_no_io_regime(self):
        # A chain's optimal peak equals its LB: nothing to write, ever.
        bounds = memory_bounds(chain_tree([1, 5, 2]))
        assert bounds.lb == bounds.peak_incore == 5
        assert not bounds.has_io_regime

    def test_figure_2b_bounds(self):
        bounds = memory_bounds(figure_2b().tree)
        assert bounds.lb == 6  # wbar of a leaf-6 node
        assert bounds.peak_incore == 8
        assert bounds.m1 == 6 and bounds.m2 == 7 and bounds.mid == 6
        assert bounds.has_io_regime

    def test_grid_keys(self):
        grid = paper_memory_grid(figure_2b().tree)
        assert set(grid) == {"M1", "Mmid", "M2"}
        assert grid["M1"] <= grid["Mmid"] <= grid["M2"]

    def test_requires_io(self):
        assert requires_io(figure_2b().tree)
        assert not requires_io(chain_tree([1, 2, 3]))

    @given(task_trees(max_nodes=9))
    def test_bounds_ordering_invariant(self, tree):
        bounds = memory_bounds(tree)
        assert bounds.lb <= bounds.peak_incore
        if bounds.has_io_regime:
            assert bounds.lb <= bounds.mid <= bounds.m2

    def test_star_bounds(self):
        bounds = memory_bounds(star_tree(1, [4, 4]))
        assert bounds.lb == 8
        assert bounds.peak_incore == 8


class TestPerformance:
    def test_no_io_is_one(self):
        assert performance(10, 0) == 1.0

    def test_full_memory_is_two(self):
        assert performance(10, 10) == 2.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            performance(0, 1)
        with pytest.raises(ValueError):
            performance(5, -1)

    def test_best_performance(self):
        assert best_performance({"a": 1.5, "b": 1.2}) == 1.2

    def test_best_performance_empty(self):
        with pytest.raises(ValueError):
            best_performance({})

    def test_overhead(self):
        assert overhead(1.2, 1.0) == pytest.approx(0.2)
        assert overhead(1.0, 1.0) == 0.0

    def test_overhead_rejects_bad_best(self):
        with pytest.raises(ValueError):
            overhead(1.0, 0.0)
