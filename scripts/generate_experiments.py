#!/usr/bin/env python
"""Regenerate every paper experiment and store the report under results/.

Usage::

    python scripts/generate_experiments.py --scale small
    python scripts/generate_experiments.py --scale paper --figures fig5 fig9

The JSON report is the source of the numbers quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments.runner import (
    ExperimentReport,
    report_to_text,
    run_counterexamples,
    run_figures,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    parser.add_argument("--figures", nargs="*", default=None,
                        help="subset of figure ids (default: all)")
    parser.add_argument("--outdir", default="results")
    args = parser.parse_args(argv)

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)

    def progress(msg: str) -> None:
        print(f"[{time.strftime('%H:%M:%S')}] {msg}", flush=True)

    report = ExperimentReport(scale=args.scale, started_at=time.time())
    t0 = time.perf_counter()
    progress("running counterexamples ...")
    report.counterexamples = run_counterexamples()
    progress("running figures ...")
    report.figures = run_figures(args.scale, figure_ids=args.figures, progress=progress)
    report.elapsed_seconds = time.perf_counter() - t0

    stem = f"experiments_{args.scale}"
    if args.figures:
        stem += "_" + "-".join(args.figures)
    json_path = outdir / f"{stem}.json"
    txt_path = outdir / f"{stem}.txt"
    json_path.write_text(report.to_json())
    txt_path.write_text(report_to_text(report) + "\n")
    progress(f"wrote {json_path} and {txt_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
