#!/usr/bin/env python
"""Regenerate every paper experiment and store the report under results/.

Usage::

    python scripts/generate_experiments.py --scale small
    python scripts/generate_experiments.py --scale paper --figures fig5 fig9
    python scripts/generate_experiments.py --scale paper --jobs 8

Runs go through the sharded batch engine (repro.experiments.batch);
completed shards are cached under <outdir>/cache, so interrupted or
repeated runs only recompute what changed.  The JSON report is the
source of the numbers quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.datasets.store import ResultCache
from repro.experiments.batch import (
    BatchStats,
    run_batch_counterexamples,
    run_batch_figures,
)
from repro.experiments.runner import ExperimentReport, report_to_text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "paper"))
    parser.add_argument("--figures", nargs="*", default=None,
                        help="subset of figure ids (default: all)")
    parser.add_argument("--outdir", default="results")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1, in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: <outdir>/cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    args = parser.parse_args(argv)

    outdir = pathlib.Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir if args.cache_dir else outdir / "cache")

    def progress(msg: str) -> None:
        print(f"[{time.strftime('%H:%M:%S')}] {msg}", flush=True)

    stats = BatchStats(cache_enabled=cache is not None)
    report = ExperimentReport(scale=args.scale, started_at=time.time())
    t0 = time.perf_counter()
    progress("running counterexamples ...")
    report.counterexamples = run_batch_counterexamples(
        jobs=args.jobs, cache=cache, stats=stats
    )
    progress("running figures ...")
    report.figures = run_batch_figures(
        args.scale,
        figure_ids=args.figures,
        jobs=args.jobs,
        cache=cache,
        stats=stats,
        progress=progress,
    )
    if cache is not None:
        stats.cache_hits = cache.hits
        stats.cache_misses = cache.misses
        progress(f"cache: {cache.hits} hits, {cache.misses} misses ({cache.root})")
    report.batch = stats.to_dict()
    report.elapsed_seconds = time.perf_counter() - t0

    stem = f"experiments_{args.scale}"
    if args.figures:
        stem += "_" + "-".join(args.figures)
    json_path = outdir / f"{stem}.json"
    txt_path = outdir / f"{stem}.txt"
    json_path.write_text(report.to_json())
    txt_path.write_text(report_to_text(report) + "\n")
    progress(f"wrote {json_path} and {txt_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
